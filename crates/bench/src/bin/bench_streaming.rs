//! Streaming runtime throughput: the threaded pipeline over a live,
//! channel-fed [`EventSource`], swept across processor shard counts.
//!
//! A feeder thread replays a labeled capture into a bounded channel —
//! the same shape as a production INT collector socket loop — while the
//! pipeline fans ingest across N processor shards and fans back in at
//! the single prediction thread. For each shard count we report
//! end-to-end wall time, reports/second, and the wall-clock prediction
//! latency distribution the aggregator measured. Writes
//! `results/streaming.json`.
//!
//! It also benchmarks the ingest *stage* in isolation — INT byte-stream
//! decode → flow-table update → feature projection — comparing the
//! allocating baseline (per-chunk `ingest`, hashmap flow table, fresh
//! projection vectors) against the pooled hot path (`ingest_into`
//! scratch, slab flow table, reused row buffer), with a counting global
//! allocator reporting allocations per event. Writes the comparison to
//! `BENCH_hotpath.json` at the repo root; `--check-allocs` exits
//! non-zero if the pooled path allocates in steady state (the CI
//! alloc-regression gate).
//!
//! Usage: `bench_streaming [--fast] [--seed N] [--check-allocs]`

use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::event::Telemetry;
use amlight_core::runtime::ThreadedPipeline;
use amlight_core::source::ChannelSource;
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight_features::reference::HashFlowTable;
use amlight_features::{FeatureSet, FlowTable, FlowTableConfig};
use amlight_int::{IntCollector, TelemetryReport};
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::TrafficClass;
use amlight_traffic::ReplayLibrary;
use serde::Serialize;
use std::time::Instant;

/// Counting allocator: lets the ingest-stage bench report allocations
/// per event and gate the zero-steady-state-allocation invariant.
#[global_allocator]
static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;

#[derive(Serialize)]
struct ShardRecord {
    shards: usize,
    reports: u64,
    predictions: u64,
    wall_ms: f64,
    reports_per_s: f64,
    mean_latency_us: f64,
    max_latency_us: f64,
}

#[derive(Serialize)]
struct StreamingReport {
    seed: u64,
    fast: bool,
    records: Vec<ShardRecord>,
}

/// One side of the ingest-stage comparison.
#[derive(Serialize, Clone, Copy)]
struct IngestSide {
    events_per_s: f64,
    allocs_per_event: f64,
    /// Per-chunk ingest latency percentiles (µs) over the measured pass.
    p50_chunk_us: f64,
    p99_chunk_us: f64,
}

#[derive(Serialize)]
struct IngestStageReport {
    seed: u64,
    events: u64,
    chunk_bytes: usize,
    /// Allocating path: per-chunk `ingest` + hashmap table + fresh rows.
    baseline: IngestSide,
    /// Pooled path: `ingest_into` + slab table + reused row buffer.
    optimized: IngestSide,
    /// optimized ÷ baseline events/s.
    speedup: f64,
}

/// Bytes handed to the collector per call — the shape of a socket read.
const INGEST_CHUNK: usize = 4096;

/// Allocating ingest stage: fresh report vector per chunk, hashmap flow
/// table, fresh projected row per event. This is the pre-optimization
/// shape of the hot path, kept as the comparison baseline.
fn baseline_pass(stream: &[u8], table: &mut HashFlowTable, set: FeatureSet) -> u64 {
    let mut collector = IntCollector::new();
    let mut n = 0u64;
    for chunk in stream.chunks(INGEST_CHUNK) {
        for r in collector.ingest(chunk) {
            let (_, rec) = table.apply(&r.flow_update());
            std::hint::black_box(rec.features().project(set));
            n += 1;
        }
    }
    n
}

/// Pooled ingest stage: reusable decode scratch, slab flow table,
/// reused projection row. Steady state performs zero allocations.
fn optimized_pass(
    stream: &[u8],
    table: &mut FlowTable,
    set: FeatureSet,
    collector: &mut IntCollector,
    scratch: &mut Vec<TelemetryReport>,
    row: &mut Vec<f64>,
) -> u64 {
    let mut n = 0u64;
    for chunk in stream.chunks(INGEST_CHUNK) {
        scratch.clear();
        collector.ingest_into(chunk, scratch);
        for r in scratch.iter() {
            let (_, rec) = table.apply(&r.flow_update());
            row.clear();
            rec.features().project_into(set, row);
            std::hint::black_box(&row);
            n += 1;
        }
    }
    n
}

/// Percentile (µs) of a sorted latency sample.
fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] * 1e6
}

/// Benchmark the isolated ingest stage over an encoded INT stream and
/// return the before/after comparison. `check_allocs` turns a non-zero
/// steady-state allocation count on the pooled path into a process
/// failure (exit 1).
fn bench_ingest_stage(
    reports: &[TelemetryReport],
    seed: u64,
    check_allocs: bool,
) -> IngestStageReport {
    let stream = IntCollector::encode_stream(reports);
    let set = FeatureSet::full();
    let cfg = FlowTableConfig::default();
    let n_chunks = stream.len().div_ceil(INGEST_CHUNK);

    banner(&format!(
        "ingest stage: {} reports, {} KiB stream, {}-byte chunks",
        reports.len(),
        stream.len() / 1024,
        INGEST_CHUNK
    ));

    // --- baseline: allocating path over the hashmap reference table ---
    let mut base_table = HashFlowTable::new(cfg);
    baseline_pass(&stream, &mut base_table, set); // warmup (flow creation)
    let region = stats_alloc::Region::new();
    let t0 = Instant::now();
    let base_events = baseline_pass(&stream, &mut base_table, set);
    let base_secs = t0.elapsed().as_secs_f64();
    let base_allocs = region.change().acquisitions() as f64 / base_events as f64;
    let mut base_lat = Vec::with_capacity(n_chunks);
    {
        let mut collector = IntCollector::new();
        for chunk in stream.chunks(INGEST_CHUNK) {
            let t = Instant::now();
            for r in collector.ingest(chunk) {
                let (_, rec) = base_table.apply(&r.flow_update());
                std::hint::black_box(rec.features().project(set));
            }
            base_lat.push(t.elapsed().as_secs_f64());
        }
    }
    base_lat.sort_by(f64::total_cmp);

    // --- optimized: pooled path over the slab table ---
    let mut opt_table = FlowTable::new(cfg);
    let mut collector = IntCollector::new();
    let mut scratch = Vec::new();
    let mut row = Vec::new();
    // Two warmup passes: the first creates every flow and grows all
    // scratch to its high-water mark; the second settles the
    // collector's reassembly buffer into its periodic steady-state
    // trajectory (a pass that starts from the residual read offset
    // peaks slightly higher than one that starts from an empty
    // buffer). The measured pass is then pure steady state.
    for _ in 0..2 {
        optimized_pass(
            &stream,
            &mut opt_table,
            set,
            &mut collector,
            &mut scratch,
            &mut row,
        );
    }
    let region = stats_alloc::Region::new();
    let t0 = Instant::now();
    let opt_events = optimized_pass(
        &stream,
        &mut opt_table,
        set,
        &mut collector,
        &mut scratch,
        &mut row,
    );
    let opt_secs = t0.elapsed().as_secs_f64();
    let opt_acquisitions = region.change().acquisitions();
    let opt_allocs = opt_acquisitions as f64 / opt_events as f64;
    let mut opt_lat = Vec::with_capacity(n_chunks);
    for chunk in stream.chunks(INGEST_CHUNK) {
        let t = Instant::now();
        scratch.clear();
        collector.ingest_into(chunk, &mut scratch);
        for r in scratch.iter() {
            let (_, rec) = opt_table.apply(&r.flow_update());
            row.clear();
            rec.features().project_into(set, &mut row);
            std::hint::black_box(&row);
        }
        opt_lat.push(t.elapsed().as_secs_f64());
    }
    opt_lat.sort_by(f64::total_cmp);

    let baseline = IngestSide {
        events_per_s: base_events as f64 / base_secs.max(1e-9),
        allocs_per_event: base_allocs,
        p50_chunk_us: percentile_us(&base_lat, 0.50),
        p99_chunk_us: percentile_us(&base_lat, 0.99),
    };
    let optimized = IngestSide {
        events_per_s: opt_events as f64 / opt_secs.max(1e-9),
        allocs_per_event: opt_allocs,
        p50_chunk_us: percentile_us(&opt_lat, 0.50),
        p99_chunk_us: percentile_us(&opt_lat, 0.99),
    };
    let speedup = optimized.events_per_s / baseline.events_per_s.max(1e-9);

    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "path", "events/s", "allocs/event", "p50 µs", "p99 µs"
    );
    for (name, side) in [("baseline", baseline), ("pooled", optimized)] {
        println!(
            "{:<10} {:>14.0} {:>14.3} {:>12.1} {:>12.1}",
            name, side.events_per_s, side.allocs_per_event, side.p50_chunk_us, side.p99_chunk_us
        );
    }
    println!("ingest speedup: {speedup:.2}x");

    if check_allocs && opt_acquisitions > 0 {
        eprintln!(
            "ALLOC REGRESSION: pooled ingest path performed {opt_acquisitions} \
             allocations in steady state (expected 0)"
        );
        std::process::exit(1);
    }
    if check_allocs {
        println!("check-allocs: pooled steady state allocated nothing ✓");
    }

    IngestStageReport {
        seed,
        events: opt_events,
        chunk_bytes: INGEST_CHUNK,
        baseline,
        optimized,
        speedup,
    }
}

fn main() {
    let fast = flag_fast();
    let check_allocs = std::env::args().any(|a| a == "--check-allocs");
    let seed = arg_seed(616);
    let lab = Testbed::new(TestbedConfig::default());

    // Offline phase: a quick but real bundle.
    let library = ReplayLibrary::build(if fast { 200 } else { 600 }, seed);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: if fast { 4 } else { 10 },
                ..MlpConfig::paper_mlp()
            },
            forest: RandomForestConfig {
                n_trees: if fast { 10 } else { 30 },
                ..RandomForestConfig::fast()
            },
            ..Default::default()
        },
    );

    // Online phase: one shared replay, streamed once per shard count.
    let replay = ReplayLibrary::build(if fast { 300 } else { 1200 }, seed ^ 0xA11CE);
    let mut reports: Vec<TelemetryReport> = Vec::new();
    for class in TrafficClass::ALL {
        reports.extend(lab.replay_class(&replay, class).into_iter().map(|(r, _)| r));
    }
    reports.sort_by_key(|r| r.export_ns);

    // Isolated ingest stage: decode → table → features, before vs after
    // the allocation-free rework.
    let ingest = bench_ingest_stage(&reports, seed, check_allocs);
    match serde_json::to_string_pretty(&ingest) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_hotpath.json", json) {
                eprintln!("warn: cannot write BENCH_hotpath.json: {e}");
            } else {
                eprintln!("(wrote BENCH_hotpath.json)");
            }
        }
        Err(e) => eprintln!("warn: cannot serialize ingest report: {e}"),
    }

    banner(&format!(
        "streaming runtime: {} reports, shard sweep",
        reports.len()
    ));
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "shards", "wall ms", "reports/s", "predictions", "mean lat µs", "max lat µs"
    );

    let mut records = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let pipe = ThreadedPipeline::new(bundle.clone()).with_shards(shards);
        let (tx, source) = ChannelSource::bounded(1024);
        let stream = reports.clone();
        let start = Instant::now();
        let handle = pipe.start(source);
        let feeder = std::thread::spawn(move || {
            for r in stream {
                if tx.send(r.into()).is_err() {
                    break;
                }
            }
        });
        let _ = feeder.join();
        let stats = match handle.join() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{shards}-shard run failed: {e}");
                continue;
            }
        };
        let wall = start.elapsed().as_secs_f64();
        let rec = ShardRecord {
            shards,
            reports: stats.events_in,
            predictions: stats.predictions,
            wall_ms: wall * 1e3,
            reports_per_s: stats.events_in as f64 / wall.max(1e-9),
            mean_latency_us: stats.mean_latency_us,
            max_latency_us: stats.max_latency_us,
        };
        println!(
            "{:>7} {:>10.2} {:>12.0} {:>12} {:>14.1} {:>14.1}",
            rec.shards,
            rec.wall_ms,
            rec.reports_per_s,
            rec.predictions,
            rec.mean_latency_us,
            rec.max_latency_us
        );
        records.push(rec);
    }

    write_json(
        "streaming",
        &StreamingReport {
            seed,
            fast,
            records,
        },
    );
}
