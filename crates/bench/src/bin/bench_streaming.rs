//! Streaming runtime throughput: the threaded pipeline over a live,
//! channel-fed [`EventSource`], swept across processor shard counts.
//!
//! A feeder thread replays a labeled capture into a bounded channel —
//! the same shape as a production INT collector socket loop — while the
//! pipeline fans ingest across N processor shards and fans back in at
//! the single prediction thread. For each shard count we report
//! end-to-end wall time, reports/second, and the wall-clock prediction
//! latency distribution the aggregator measured. Writes
//! `results/streaming.json`.
//!
//! Usage: `bench_streaming [--fast] [--seed N]`

use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::runtime::ThreadedPipeline;
use amlight_core::source::ChannelSource;
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_int, train_bundle, TrainerConfig};
use amlight_features::FeatureSet;
use amlight_int::TelemetryReport;
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::TrafficClass;
use amlight_traffic::ReplayLibrary;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ShardRecord {
    shards: usize,
    reports: u64,
    predictions: u64,
    wall_ms: f64,
    reports_per_s: f64,
    mean_latency_us: f64,
    max_latency_us: f64,
}

#[derive(Serialize)]
struct StreamingReport {
    seed: u64,
    fast: bool,
    records: Vec<ShardRecord>,
}

fn main() {
    let fast = flag_fast();
    let seed = arg_seed(616);
    let lab = Testbed::new(TestbedConfig::default());

    // Offline phase: a quick but real bundle.
    let library = ReplayLibrary::build(if fast { 200 } else { 600 }, seed);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_int(&training, FeatureSet::Int);
    let bundle = train_bundle(
        &raw,
        FeatureSet::Int,
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: if fast { 4 } else { 10 },
                ..MlpConfig::paper_mlp()
            },
            forest: RandomForestConfig {
                n_trees: if fast { 10 } else { 30 },
                ..RandomForestConfig::fast()
            },
            ..Default::default()
        },
    );

    // Online phase: one shared replay, streamed once per shard count.
    let replay = ReplayLibrary::build(if fast { 300 } else { 1200 }, seed ^ 0xA11CE);
    let mut reports: Vec<TelemetryReport> = Vec::new();
    for class in TrafficClass::ALL {
        reports.extend(lab.replay_class(&replay, class).into_iter().map(|(r, _)| r));
    }
    reports.sort_by_key(|r| r.export_ns);
    banner(&format!(
        "streaming runtime: {} reports, shard sweep",
        reports.len()
    ));
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "shards", "wall ms", "reports/s", "predictions", "mean lat µs", "max lat µs"
    );

    let mut records = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let pipe = ThreadedPipeline::new(bundle.clone()).with_shards(shards);
        let (tx, source) = ChannelSource::bounded(1024);
        let stream = reports.clone();
        let start = Instant::now();
        let handle = pipe.start(source);
        let feeder = std::thread::spawn(move || {
            for r in stream {
                if tx.send(r.into()).is_err() {
                    break;
                }
            }
        });
        let _ = feeder.join();
        let stats = match handle.join() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{shards}-shard run failed: {e}");
                continue;
            }
        };
        let wall = start.elapsed().as_secs_f64();
        let rec = ShardRecord {
            shards,
            reports: stats.events_in,
            predictions: stats.predictions,
            wall_ms: wall * 1e3,
            reports_per_s: stats.events_in as f64 / wall.max(1e-9),
            mean_latency_us: stats.mean_latency_us,
            max_latency_us: stats.max_latency_us,
        };
        println!(
            "{:>7} {:>10.2} {:>12.0} {:>12} {:>14.1} {:>14.1}",
            rec.shards,
            rec.wall_ms,
            rec.reports_per_s,
            rec.predictions,
            rec.mean_latency_us,
            rec.max_latency_us
        );
        records.push(rec);
    }

    write_json(
        "streaming",
        &StreamingReport {
            seed,
            fast,
            records,
        },
    );
}
