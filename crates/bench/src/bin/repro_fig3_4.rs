//! Reproduce paper Figs. 3 & 4: Random-Forest confusion matrices on INT
//! and sFlow test data.
//!
//! Usage: `repro_fig3_4 [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::figures::fig3_4_confusions;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let cap = ExperimentCapture::generate(cfg);
    let (int, sflow) = fig3_4_confusions(&cap, fast);

    banner("Fig. 3 — confusion matrix, RF model, INT data");
    print!("{int}");
    println!("accuracy {:.4}  f1 {:.4}", int.accuracy(), int.f1());

    banner("Fig. 4 — confusion matrix, RF model, sFlow data");
    print!("{sflow}");
    println!("accuracy {:.4}  f1 {:.4}", sflow.accuracy(), sflow.f1());

    write_json("fig3_4", &serde_json::json!({ "int": int, "sflow": sflow }));
}
