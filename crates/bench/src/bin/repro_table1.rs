//! Reproduce paper Table I: the simulated attack-episode schedule.
//!
//! Usage: `repro_table1 [--fast] [--seed N]`

use amlight_bench::tables::table1_schedule;
use amlight_bench::util::{banner, flag_fast, write_json};

fn main() {
    let day_len_s = if flag_fast() { 5 } else { 20 };
    banner(&format!(
        "Table I — simulated attack episodes (two {day_len_s}-second lab days; \
         paper: June 10–11 2024)"
    ));
    let rows = table1_schedule(day_len_s);
    for r in &rows {
        println!("{r}");
    }
    write_json("table1", &rows);
}
