//! Run every table and figure reproduction in sequence (the artifact a
//! referee would run). Prints all tables and writes results/*.json.
//!
//! Usage: `repro_all [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::figures::{
    fig3_4_confusions, fig5_timeline, fig7_distributions, render_fig5_ascii,
};
use amlight_bench::tables::*;
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::pipeline::PipelineConfig;
use amlight_net::TrafficClass;

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let day_len = cfg.day_len_s;
    let seed = cfg.seed;

    banner("Table I — attack episode schedule");
    let t1 = table1_schedule(day_len);
    for r in &t1 {
        println!("{r}");
    }
    write_json("table1", &t1);

    banner("Table II — feature matrix");
    let t2 = table2_features();
    for r in &t2 {
        println!("{r}");
    }
    write_json("table2", &t2);

    eprintln!(
        "\ngenerating capture (day_len={}s, seed={})...",
        cfg.day_len_s, cfg.seed
    );
    let cap = ExperimentCapture::generate(cfg);
    eprintln!(
        "capture: {} packets → {} INT reports, {} sFlow samples",
        cap.trace_packets,
        cap.int.len(),
        cap.sflow.len()
    );

    banner("Table III — INT vs sFlow, four models, 90:10 split");
    let t3 = table3_comparison(&cap, fast);
    for r in &t3 {
        println!("{}", r.render());
    }
    write_json("table3", &t3);

    banner("Table IV — zero-day (train day 0, test day 1)");
    let t4 = table4_zero_day(&cap, fast);
    for r in &t4 {
        println!("{}", r.render());
    }
    write_json("table4", &t4);

    banner("Table V — top-5 features per model");
    let t5 = table5_importance(&cap, fast);
    for r in &t5 {
        println!("\n{}:", r.model);
        for (name, score) in &r.top {
            println!("  {:<26} {:.4}", name, score);
        }
    }
    write_json("table5", &t5);

    banner("Figs. 3/4 — RF confusion matrices");
    let (f3, f4) = fig3_4_confusions(&cap, fast);
    println!("INT:\n{f3}");
    println!("sFlow:\n{f4}");
    write_json("fig3_4", &serde_json::json!({ "int": f3, "sflow": f4 }));

    banner("Fig. 5 — detection timeline");
    let points = fig5_timeline(&cap, if fast { 80 } else { 160 }, fast);
    print!("{}", render_fig5_ascii(&points));
    write_json("fig5", &points);

    banner("Table VI — automated pipeline (paper pace)");
    let packets = if fast { 300 } else { 2500 };
    let (t6, reports) = table6_automated(packets, PipelineConfig::paper_pace(), fast, seed);
    for r in &t6 {
        println!("{}", r.render());
    }
    write_json("table6", &t6);

    banner("Fig. 7 — prediction distributions");
    for (idx, class) in [(0usize, TrafficClass::Benign), (4, TrafficClass::SlowLoris)] {
        let series = fig7_distributions(&reports[idx], class);
        let wrong = series.iter().filter(|p| p.correct == Some(false)).count();
        println!(
            "{:<10} predictions {:>6}, misclassified {:>4}",
            class.name(),
            series.len(),
            wrong
        );
        write_json(
            &format!("fig7_{}", class.name().replace(' ', "_").to_lowercase()),
            &series,
        );
    }

    println!("\nAll artifacts written to results/.");
}
