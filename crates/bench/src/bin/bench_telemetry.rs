//! Telemetry backends head to head through the *shared* streaming
//! pipeline: the same Fig. 2 module threads fed every backend in the
//! registry's view of the identical SlowLoris-bearing capture — INT
//! reports, sFlow samples, and PINT digest reports at several per-packet
//! bit budgets.
//!
//! This is the paper's central comparison (Fig. 5) run end to end
//! instead of classifier-only, widened into an overhead–recall
//! frontier: each point prices its backend in bits per packet
//! ([`TelemetryBackend::bits_per_packet`]) and scores streaming-run
//! recall, with warm-up (`Pending`) verdicts counted as misses.
//! Sampling starves sFlow of per-flow updates (SlowLoris especially),
//! so its flows rarely leave the smoothing warm-up; PINT keeps
//! per-packet coverage for a few bits per packet, so it sits between
//! sFlow and INT on recall at a tiny fraction of INT's overhead. The
//! machine-checked invariant is the frontier ordering
//! `INT ≥ PINT@k ≥ sFlow` (non-strict) for every PINT budget.
//!
//! Writes `results/telemetry.json`.
//!
//! Usage: `bench_telemetry [--fast] [--seed N] [--period N] [--check]`
//!
//! `--check` re-reads the committed `results/telemetry.json` and
//! validates its schema and the frontier ordering without running
//! anything — the CI drift gate.

use amlight_bench::util::{arg_seed, banner, flag_fast, results_dir, write_json};
use amlight_core::event::{TelemetryBackend, ViewOptions};
use amlight_core::runtime::{ThreadedPipeline, ThreadedRunStats};
use amlight_core::source::{EventReplaySource, EventSource};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_labeled, train_bundle, ModelBundle, TrainerConfig};
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::TrafficClass;
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The PINT per-packet budgets swept into the frontier.
const PINT_BITS: [u8; 3] = [5, 8, 12];

/// Recall comparisons tolerate this much jitter — the gate is a
/// non-strict ordering, not a measurement-noise trap.
const RECALL_EPS: f64 = 1e-9;

/// One point on the overhead–recall frontier.
#[derive(Debug, Serialize, Deserialize)]
struct FrontierPoint {
    /// Display label: `int`, `pint@5`, …, `sflow`.
    label: String,
    /// Registry name ([`TelemetryBackend::name`]).
    backend: String,
    /// PINT digest budget, when this point is a PINT sweep member.
    pint_bits: Option<u8>,
    /// Telemetry overhead at the capture's hop count, bits per packet.
    bits_per_packet: f64,
    /// Telemetry events the pipeline ingested (the sampling loss shows
    /// up right here).
    events_in: u64,
    predictions: u64,
    attack_updates: u64,
    attack_hits: u64,
    attack_pending: u64,
    recall: f64,
    false_alarm_rate: f64,
    wall_ms: f64,
    events_per_s: f64,
    mean_latency_us: f64,
    /// Labeled events offered to this backend, per traffic class.
    coverage: Vec<ClassCoverage>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ClassCoverage {
    class: String,
    events: u64,
}

/// The headline artifact: the paper's qualitative Fig. 5 result as a
/// machine-checkable invariant, widened across the registry.
#[derive(Debug, Serialize, Deserialize)]
struct RecallGap {
    int_recall: f64,
    sflow_recall: f64,
    /// Worst PINT recall across the bit sweep.
    pint_min_recall: f64,
    /// Best PINT recall across the bit sweep.
    pint_max_recall: f64,
    /// `INT ≥ PINT@k ≥ sFlow` (non-strict) for every swept budget.
    holds: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct TelemetryReportJson {
    seed: u64,
    fast: bool,
    /// sFlow sampling period (1-in-N).
    sample_period: u32,
    /// PINT budgets swept.
    pint_bits: Vec<u8>,
    /// Switch path length the bits-per-packet pricing assumed.
    hops: usize,
    frontier: Vec<FrontierPoint>,
    gap: RecallGap,
}

fn arg_period(default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--period")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The frontier ordering gate, shared between the live run's printout
/// and `--check`.
fn gate(report: &TelemetryReportJson) -> Result<(), String> {
    let point = |label: &str| {
        report
            .frontier
            .iter()
            .find(|p| p.label == label)
            .ok_or_else(|| format!("point `{label}` missing from the frontier"))
    };
    let int = point("int")?;
    let sflow = point("sflow")?;
    let pints: Vec<&FrontierPoint> = report
        .frontier
        .iter()
        .filter(|p| p.backend == "pint")
        .collect();
    if pints.len() < 3 {
        return Err(format!(
            "frontier has {} PINT points, need at least 3 bit budgets",
            pints.len()
        ));
    }
    for p in report.frontier.iter() {
        if p.events_in == 0 {
            return Err(format!("point `{}` ingested nothing", p.label));
        }
        if p.coverage.is_empty() {
            return Err(format!("point `{}` has no per-class coverage", p.label));
        }
        if !(p.recall.is_finite() && (0.0..=1.0).contains(&p.recall)) {
            return Err(format!(
                "point `{}` recall {} out of range",
                p.label, p.recall
            ));
        }
        if !(p.bits_per_packet.is_finite() && p.bits_per_packet > 0.0) {
            return Err(format!(
                "point `{}` bits/packet {} out of range",
                p.label, p.bits_per_packet
            ));
        }
    }
    for p in &pints {
        if p.recall > int.recall + RECALL_EPS {
            return Err(format!(
                "frontier inverted: {} recall {:.4} above INT {:.4}",
                p.label, p.recall, int.recall
            ));
        }
        if p.recall + RECALL_EPS < sflow.recall {
            return Err(format!(
                "frontier inverted: {} recall {:.4} below sFlow {:.4}",
                p.label, p.recall, sflow.recall
            ));
        }
        if p.bits_per_packet >= int.bits_per_packet {
            return Err(format!(
                "{} costs {:.1} bits/packet, not below INT's {:.1}",
                p.label, p.bits_per_packet, int.bits_per_packet
            ));
        }
    }
    if sflow.recall > int.recall + RECALL_EPS {
        return Err(format!(
            "recall gap inverted: INT {} vs sFlow {}",
            int.recall, sflow.recall
        ));
    }
    Ok(())
}

/// `--check`: validate the committed artifact instead of running.
fn check_committed() -> Result<(), String> {
    let path = results_dir().join("telemetry.json");
    let json = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let report: TelemetryReportJson = serde_json::from_str(&json)
        .map_err(|e| format!("schema drift in {}: {e}", path.display()))?;
    gate(&report)?;
    if !report.gap.holds {
        return Err("gap.holds is false in the committed artifact".to_string());
    }
    println!(
        "telemetry.json ok: INT {:.4} ≥ PINT [{:.4}, {:.4}] ≥ sFlow {:.4} (period {}, bits {:?})",
        report.gap.int_recall,
        report.gap.pint_min_recall,
        report.gap.pint_max_recall,
        report.gap.sflow_recall,
        report.sample_period,
        report.pint_bits,
    );
    Ok(())
}

fn trainer_config(fast: bool) -> TrainerConfig {
    TrainerConfig {
        mlp: MlpConfig {
            epochs: if fast { 4 } else { 10 },
            ..MlpConfig::paper_mlp()
        },
        forest: RandomForestConfig {
            n_trees: if fast { 10 } else { 30 },
            ..RandomForestConfig::fast()
        },
        ..Default::default()
    }
}

fn run_point<S, L>(
    label: &str,
    backend: TelemetryBackend,
    pint_bits: Option<u8>,
    bits_per_packet: f64,
    bundle: ModelBundle,
    source: S,
    labeled_events: L,
) -> (FrontierPoint, ThreadedRunStats)
where
    S: EventSource + 'static,
    L: Iterator<Item = TrafficClass>,
{
    let mut per_class = vec![0u64; TrafficClass::ALL.len()];
    for class in labeled_events {
        per_class[class as usize] += 1;
    }
    let pipe = ThreadedPipeline::new(bundle).with_shards(2);
    let start = Instant::now();
    let stats = match pipe.start(source).join() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{label} run failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let rec = FrontierPoint {
        label: label.to_string(),
        backend: backend.name().to_string(),
        pint_bits,
        bits_per_packet,
        events_in: stats.events_in,
        predictions: stats.predictions,
        attack_updates: stats.labeled.attack_updates,
        attack_hits: stats.labeled.attack_hits,
        attack_pending: stats.labeled.attack_pending,
        recall: stats.labeled.recall(),
        false_alarm_rate: stats.labeled.false_alarm_rate(),
        wall_ms: wall * 1e3,
        events_per_s: stats.events_in as f64 / wall.max(1e-9),
        mean_latency_us: stats.mean_latency_us,
        coverage: TrafficClass::ALL
            .into_iter()
            .map(|c| ClassCoverage {
                class: c.name().to_string(),
                events: per_class[c as usize],
            })
            .collect(),
    };
    (rec, stats)
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        if let Err(e) = check_committed() {
            eprintln!("telemetry check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let fast = flag_fast();
    let seed = arg_seed(20824);
    let period = arg_period(if fast { 64 } else { 256 });
    let day_len = if fast { 4 } else { 10 };
    let lab = Testbed::new(TestbedConfig::default());

    // One SlowLoris-bearing mix for training, a fresh one for replay.
    let train_trace = TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed)).generate();
    let test_trace =
        TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed ^ 0x5F10)).generate();
    let train_labeled = lab.run_labeled(&train_trace);
    let test_labeled = lab.run_labeled(&test_trace);
    let hops = train_labeled
        .first()
        .map(|(r, _)| r.hops.len())
        .unwrap_or(1);

    banner(&format!(
        "telemetry frontier through the shared pipeline (sFlow 1-in-{period}, PINT {PINT_BITS:?} bits)"
    ));
    println!(
        "capture: {} train / {} test INT reports over {hops} hop(s)",
        train_labeled.len(),
        test_labeled.len()
    );

    // The sweep: every registry backend, PINT at several bit budgets.
    // Each point derives its own training view and its own test view of
    // the same two captures — the paper's deployment reality, not a
    // handicap.
    let mut sweep: Vec<(String, TelemetryBackend, Option<u8>)> = Vec::new();
    for backend in TelemetryBackend::ALL {
        match backend {
            TelemetryBackend::Pint => {
                for bits in PINT_BITS {
                    sweep.push((format!("pint@{bits}"), backend, Some(bits)));
                }
            }
            _ => sweep.push((backend.name().to_string(), backend, None)),
        }
    }

    let mut frontier = Vec::new();
    for (label, backend, bits) in sweep {
        let opts = ViewOptions {
            sample_period: period,
            pint_bits: bits.unwrap_or(8),
            seed,
        };
        let train_view = backend.derive_view(&train_labeled, &opts);
        let test_opts = ViewOptions {
            seed: seed ^ 0x5F10,
            ..opts
        };
        let test_view = backend.derive_view(&test_labeled, &test_opts);
        let bundle = train_bundle(
            &dataset_from_labeled(&train_view, backend.feature_set()),
            backend.feature_set(),
            &trainer_config(fast),
        );
        let truths: Vec<TrafficClass> = test_view.iter().filter_map(|e| e.truth).collect();
        let (rec, _) = run_point(
            &label,
            backend,
            bits,
            backend.bits_per_packet(hops, &opts),
            bundle,
            EventReplaySource::new(test_view),
            truths.into_iter(),
        );
        frontier.push(rec);
    }

    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>9} {:>9} {:>12}",
        "point", "bits/pkt", "events", "predictions", "recall", "far", "events/s"
    );
    for rec in &frontier {
        println!(
            "{:>8} {:>12.2} {:>10} {:>12} {:>9.4} {:>9.4} {:>12.0}",
            rec.label,
            rec.bits_per_packet,
            rec.events_in,
            rec.predictions,
            rec.recall,
            rec.false_alarm_rate,
            rec.events_per_s
        );
    }
    println!("\ncoverage per class (labeled events offered):");
    for (i, c) in frontier[0].coverage.iter().enumerate() {
        print!("  {:<10}", c.class);
        for rec in &frontier {
            print!(" {}={:>8}", rec.label, rec.coverage[i].events);
        }
        println!();
    }

    let recall_of = |label: &str| {
        frontier
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.recall)
            .unwrap_or(f64::NAN)
    };
    let pint_recalls: Vec<f64> = frontier
        .iter()
        .filter(|p| p.backend == "pint")
        .map(|p| p.recall)
        .collect();
    let report = TelemetryReportJson {
        seed,
        fast,
        sample_period: period,
        pint_bits: PINT_BITS.to_vec(),
        hops,
        gap: RecallGap {
            int_recall: recall_of("int"),
            sflow_recall: recall_of("sflow"),
            pint_min_recall: pint_recalls.iter().copied().fold(f64::INFINITY, f64::min),
            pint_max_recall: pint_recalls
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            holds: false, // stamped below, from the shared gate
        },
        frontier,
    };
    let mut report = report;
    let verdict = gate(&report);
    report.gap.holds = verdict.is_ok();
    match &verdict {
        Ok(()) => println!(
            "\nfrontier holds: INT {:.4} ≥ PINT [{:.4}, {:.4}] ≥ sFlow {:.4} \
             (telemetry budget buys recall back — paper Fig. 5, priced)",
            report.gap.int_recall,
            report.gap.pint_min_recall,
            report.gap.pint_max_recall,
            report.gap.sflow_recall,
        ),
        Err(e) => println!("\nUNEXPECTED: frontier ordering failed on this seed: {e}"),
    }

    write_json("telemetry", &report);
    if verdict.is_err() {
        std::process::exit(1);
    }
}
