//! Telemetry backends head to head through the *shared* streaming
//! pipeline: the same Fig. 2 module threads, once fed INT reports and
//! once fed sFlow samples of the identical SlowLoris-bearing capture.
//!
//! This is the paper's central comparison (Fig. 5) run end to end
//! instead of classifier-only: each backend gets a bundle trained on
//! its own view, labels ride the channels, and the aggregation stage
//! scores every smoothed verdict against ground truth — so the
//! `recall` fields below are streaming-run recall, with warm-up
//! (`Pending`) verdicts counted as misses. Sampling starves sFlow of
//! per-flow updates (SlowLoris especially), so its flows rarely leave
//! the smoothing warm-up: the expected artifact is
//! `gap.holds == true` (sFlow recall strictly below INT recall).
//!
//! Writes `results/telemetry.json`.
//!
//! Usage: `bench_telemetry [--fast] [--seed N] [--period N] [--check]`
//!
//! `--check` re-reads the committed `results/telemetry.json` and
//! validates its schema and the recall gap without running anything —
//! the CI drift gate.

use amlight_bench::util::{arg_seed, banner, flag_fast, results_dir, write_json};
use amlight_core::runtime::{ThreadedPipeline, ThreadedRunStats};
use amlight_core::source::{EventSource, ReplaySource, SflowReplaySource};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{
    dataset_from_int, dataset_from_sflow, train_bundle, ModelBundle, TrainerConfig,
};
use amlight_features::FeatureSet;
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::TrafficClass;
use amlight_sflow::{SamplingMode, SflowAgent};
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-backend streaming outcome — one row of the comparison.
#[derive(Debug, Serialize, Deserialize)]
struct BackendRecord {
    backend: String,
    /// Telemetry events the pipeline ingested (INT reports or sFlow
    /// samples — the sampling loss shows up right here).
    events_in: u64,
    predictions: u64,
    attack_updates: u64,
    attack_hits: u64,
    attack_pending: u64,
    recall: f64,
    false_alarm_rate: f64,
    wall_ms: f64,
    events_per_s: f64,
    mean_latency_us: f64,
    /// Labeled events offered to this backend, per traffic class.
    coverage: Vec<ClassCoverage>,
}

#[derive(Debug, Serialize, Deserialize)]
struct ClassCoverage {
    class: String,
    events: u64,
}

/// The headline artifact: the paper's qualitative Fig. 5 result as a
/// machine-checkable invariant.
#[derive(Debug, Serialize, Deserialize)]
struct RecallGap {
    int_recall: f64,
    sflow_recall: f64,
    /// sFlow strictly below INT on the same capture.
    holds: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct TelemetryReportJson {
    seed: u64,
    fast: bool,
    /// sFlow sampling period (1-in-N).
    sample_period: u32,
    backends: Vec<BackendRecord>,
    gap: RecallGap,
}

fn arg_period(default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--period")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--check`: validate the committed artifact instead of running.
fn check_committed() -> Result<(), String> {
    let path = results_dir().join("telemetry.json");
    let json = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let report: TelemetryReportJson = serde_json::from_str(&json)
        .map_err(|e| format!("schema drift in {}: {e}", path.display()))?;
    for backend in ["int", "sflow"] {
        let rec = report
            .backends
            .iter()
            .find(|b| b.backend == backend)
            .ok_or_else(|| format!("backend `{backend}` missing from {}", path.display()))?;
        if rec.events_in == 0 {
            return Err(format!("backend `{backend}` ingested nothing"));
        }
        if rec.coverage.is_empty() {
            return Err(format!("backend `{backend}` has no per-class coverage"));
        }
        if !(rec.recall.is_finite() && (0.0..=1.0).contains(&rec.recall)) {
            return Err(format!(
                "backend `{backend}` recall {} out of range",
                rec.recall
            ));
        }
    }
    if !report.gap.holds {
        return Err(format!(
            "recall gap inverted: INT {} vs sFlow {}",
            report.gap.int_recall, report.gap.sflow_recall
        ));
    }
    println!(
        "telemetry.json ok: INT recall {:.4} > sFlow recall {:.4} (period {})",
        report.gap.int_recall, report.gap.sflow_recall, report.sample_period
    );
    Ok(())
}

fn trainer_config(fast: bool) -> TrainerConfig {
    TrainerConfig {
        mlp: MlpConfig {
            epochs: if fast { 4 } else { 10 },
            ..MlpConfig::paper_mlp()
        },
        forest: RandomForestConfig {
            n_trees: if fast { 10 } else { 30 },
            ..RandomForestConfig::fast()
        },
        ..Default::default()
    }
}

fn run_backend<S, L>(
    name: &str,
    bundle: ModelBundle,
    source: S,
    labeled_events: L,
) -> (BackendRecord, ThreadedRunStats)
where
    S: EventSource + 'static,
    L: Iterator<Item = TrafficClass>,
{
    let mut per_class = vec![0u64; TrafficClass::ALL.len()];
    for class in labeled_events {
        per_class[class as usize] += 1;
    }
    let pipe = ThreadedPipeline::new(bundle).with_shards(2);
    let start = Instant::now();
    let stats = match pipe.start(source).join() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{name} run failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let rec = BackendRecord {
        backend: name.to_string(),
        events_in: stats.events_in,
        predictions: stats.predictions,
        attack_updates: stats.labeled.attack_updates,
        attack_hits: stats.labeled.attack_hits,
        attack_pending: stats.labeled.attack_pending,
        recall: stats.labeled.recall(),
        false_alarm_rate: stats.labeled.false_alarm_rate(),
        wall_ms: wall * 1e3,
        events_per_s: stats.events_in as f64 / wall.max(1e-9),
        mean_latency_us: stats.mean_latency_us,
        coverage: TrafficClass::ALL
            .into_iter()
            .map(|c| ClassCoverage {
                class: c.name().to_string(),
                events: per_class[c as usize],
            })
            .collect(),
    };
    (rec, stats)
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        if let Err(e) = check_committed() {
            eprintln!("telemetry check FAILED: {e}");
            std::process::exit(1);
        }
        return;
    }

    let fast = flag_fast();
    let seed = arg_seed(20824);
    let period = arg_period(if fast { 64 } else { 256 });
    let day_len = if fast { 4 } else { 10 };
    let lab = Testbed::new(TestbedConfig::default());

    // One SlowLoris-bearing mix for training, a fresh one for replay.
    let train_trace = TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed)).generate();
    let test_trace =
        TrafficMix::new(TrafficMixConfig::paper_capture(day_len, seed ^ 0x5F10)).generate();

    // Each backend observes the same packets its own way and trains on
    // its own view — the paper's deployment reality, not a handicap.
    let int_train = lab.run_labeled(&train_trace);
    let int_test = lab.run_labeled(&test_trace);
    let mut train_agent = SflowAgent::new(SamplingMode::RandomSkip { period }, seed);
    let sflow_train =
        train_agent.sample_stream(train_trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));
    let mut test_agent = SflowAgent::new(SamplingMode::RandomSkip { period }, seed ^ 0x5F10);
    let sflow_test =
        test_agent.sample_stream(test_trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));

    banner(&format!(
        "telemetry backends through the shared pipeline (period 1-in-{period})"
    ));
    println!(
        "train: {} INT reports vs {} sFlow samples; test: {} vs {}",
        int_train.len(),
        sflow_train.len(),
        int_test.len(),
        sflow_test.len()
    );

    let int_bundle = train_bundle(
        &dataset_from_int(&int_train, FeatureSet::Int),
        FeatureSet::Int,
        &trainer_config(fast),
    );
    let sflow_bundle = train_bundle(
        &dataset_from_sflow(&sflow_train),
        FeatureSet::Sflow,
        &trainer_config(fast),
    );

    let (int_rec, _) = run_backend(
        "int",
        int_bundle,
        ReplaySource::from_labeled(&int_test),
        int_test.iter().map(|(_, c)| *c),
    );
    let (sflow_rec, _) = run_backend(
        "sflow",
        sflow_bundle,
        SflowReplaySource::from_labeled(&sflow_test),
        sflow_test.iter().map(|(_, c)| *c),
    );

    println!(
        "{:>7} {:>10} {:>12} {:>9} {:>9} {:>12}",
        "backend", "events", "predictions", "recall", "far", "events/s"
    );
    for rec in [&int_rec, &sflow_rec] {
        println!(
            "{:>7} {:>10} {:>12} {:>9.4} {:>9.4} {:>12.0}",
            rec.backend,
            rec.events_in,
            rec.predictions,
            rec.recall,
            rec.false_alarm_rate,
            rec.events_per_s
        );
    }
    println!("\ncoverage per class (labeled events offered):");
    for (i, c) in int_rec.coverage.iter().enumerate() {
        println!(
            "  {:<10} INT {:>8}   sFlow {:>6}",
            c.class, c.events, sflow_rec.coverage[i].events
        );
    }

    let gap = RecallGap {
        int_recall: int_rec.recall,
        sflow_recall: sflow_rec.recall,
        holds: sflow_rec.recall < int_rec.recall,
    };
    println!(
        "\nrecall gap: INT {:.4} vs sFlow {:.4} → {}",
        gap.int_recall,
        gap.sflow_recall,
        if gap.holds {
            "sampling loses detections (paper Fig. 5)"
        } else {
            "UNEXPECTED: no gap on this seed"
        }
    );

    write_json(
        "telemetry",
        &TelemetryReportJson {
            seed,
            fast,
            sample_period: period,
            backends: vec![int_rec, sflow_rec],
            gap,
        },
    );
}
