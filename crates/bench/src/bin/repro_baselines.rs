//! Three telemetry styles, one detection task: per-packet INT vs
//! 1-in-N sFlow sampling vs OpenFlow/NetFlow-style counter polling.
//!
//! The paper compares the first two and *describes* the third (its
//! related work, ref \[17\]: "the number of features that can be derived
//! from this method may be somewhat limited"). This binary measures all
//! three on the same capture:
//!
//! * **INT** — every packet, 15 features;
//! * **sFlow** — 1-in-N packets, 12 features;
//! * **counters @1 s / @10 s** — one record per flow per interval,
//!   8 interval-delta features.
//!
//! Usage: `repro_baselines [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::trainer::dataset_from_events;
use amlight_features::{FeatureId, FeatureSet};
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{Dataset, RandomForest, RandomForestConfig, StandardScaler};
use amlight_net::{Trace, TrafficClass};
use amlight_sflow::FlowCounterPoller;
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use serde_json::json;

/// Build the counter-polling dataset from the raw packet trace.
fn counter_dataset(trace: &Trace, interval_ns: u64) -> Dataset {
    // Ground truth per flow: a flow is an attack flow if any of its
    // packets belongs to an attack class (flows never mix classes in our
    // generators).
    let mut labels = std::collections::HashMap::new();
    let mut poller = FlowCounterPoller::new(interval_ns);
    for r in trace.iter() {
        labels.entry(r.packet.flow_key()).or_insert(r.class);
        poller.observe(r.ts_ns, &r.packet);
    }
    let records = poller.finish();
    let interval_s = interval_ns as f64 / 1e9;
    let mut d = Dataset::with_capacity(amlight_sflow::CounterRecord::FEATURE_COUNT, records.len());
    for rec in &records {
        let label = labels[&rec.flow].label();
        d.push(&rec.features(interval_s), label);
    }
    d
}

fn evaluate(name: &str, raw: &Dataset, fast: bool, seed: u64, rows: &mut Vec<serde_json::Value>) {
    let cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };
    let (train_raw, test_raw) = raw.train_test_split(0.9, seed ^ 0x90);
    let mut train = train_raw.clone();
    let scaler = StandardScaler::fit_transform(&mut train);
    let mut test = test_raw;
    scaler.transform(&mut test);
    let rf = RandomForest::fit(&train, &cfg, seed);
    let m = rf.evaluate(&test).metrics();
    println!(
        "{:<16} {:>9} rows {:>3} feats   acc {:.4}  recall {:.4}  precision {:.4}  F1 {:.4}",
        name,
        raw.len(),
        raw.n_features(),
        m.accuracy,
        m.recall,
        m.precision,
        m.f1
    );
    rows.push(json!({
        "telemetry": name,
        "rows": raw.len(),
        "features": raw.n_features(),
        "accuracy": m.accuracy,
        "recall": m.recall,
        "precision": m.precision,
        "f1": m.f1,
    }));
}

/// The queue-blind projection sFlow populates (12 of 15 columns).
fn sflow_set() -> FeatureSet {
    FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
}

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let seed = cfg.seed;

    // The capture (for INT and sFlow views) plus the raw trace (for the
    // counter poller, which taps the switch like sFlow does).
    let cap = ExperimentCapture::generate(cfg);
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(cfg.day_len_s, seed));
    let trace = mix.generate();

    banner("Telemetry baselines — Random Forest on identical traffic");
    let mut rows = Vec::new();
    evaluate(
        "INT",
        &dataset_from_events(&cap.int, FeatureSet::full()),
        fast,
        seed,
        &mut rows,
    );
    evaluate(
        "sFlow 1/64",
        &dataset_from_events(&cap.sflow, sflow_set()),
        fast,
        seed,
        &mut rows,
    );
    evaluate(
        "counters @1s",
        &counter_dataset(&trace, 1_000_000_000),
        fast,
        seed,
        &mut rows,
    );
    evaluate(
        "counters @10s",
        &counter_dataset(&trace, 10_000_000_000),
        fast,
        seed,
        &mut rows,
    );

    // Coverage: which styles even *see* the SlowLoris episodes?
    let slowloris_packets = trace
        .iter()
        .filter(|r| r.class == TrafficClass::SlowLoris)
        .count();
    let sflow_slowloris = cap
        .sflow
        .iter()
        .filter(|(_, c)| *c == TrafficClass::SlowLoris)
        .count();
    println!(
        "\nSlowLoris visibility: {} packets → INT reports all of them, \
         sFlow sampled {}, counters aggregate them into per-interval rows.",
        slowloris_packets, sflow_slowloris
    );
    // The honest differentiator is time-to-signal, not offline accuracy:
    // a counter poller cannot produce ANY evidence about a flow before
    // its interval closes, while INT yields a judgeable update at the
    // flow's second packet.
    let mut int_delay_sum = 0.0f64;
    let mut cnt1_delay_sum = 0.0f64;
    let mut cnt10_delay_sum = 0.0f64;
    let mut n_flows = 0.0f64;
    let mut first_seen: std::collections::HashMap<_, (u64, u32)> = std::collections::HashMap::new();
    for r in trace.iter().filter(|r| r.class != TrafficClass::Benign) {
        let e = first_seen
            .entry(r.packet.flow_key())
            .or_insert((r.ts_ns, 0));
        e.1 += 1;
        if e.1 == 2 {
            let start = e.0;
            let second = r.ts_ns;
            n_flows += 1.0;
            int_delay_sum += (second - start) as f64 / 1e9;
            let next = |iv: u64| ((start / iv) + 1) * iv;
            cnt1_delay_sum += (next(1_000_000_000) - start) as f64 / 1e9;
            cnt10_delay_sum += (next(10_000_000_000) - start) as f64 / 1e9;
        }
    }
    if n_flows > 0.0 {
        println!("\ntime to first judgeable record, mean over attack flows:");
        println!(
            "  INT (second packet)     {:>8.2} s",
            int_delay_sum / n_flows
        );
        println!(
            "  counters @1s            {:>8.2} s",
            cnt1_delay_sum / n_flows
        );
        println!(
            "  counters @10s           {:>8.2} s",
            cnt10_delay_sum / n_flows
        );
    }
    println!(
        "\nOffline accuracy is comparable across styles on this workload —\n\
         the separation is structural: counters flatten per-packet features\n\
         (no inter-arrival/size-variance/queue data, the \"somewhat limited\"\n\
         set the paper's related work describes) and, decisively, cannot\n\
         signal before the polling interval closes, while INT produces a\n\
         judgeable flow update at the second packet."
    );
    write_json("baselines", &rows);
}
