//! Online adaptation under distribution drift: the epoch-published model
//! state end to end.
//!
//! The paper's benign traffic is explicitly diurnal (§IV-A), so a model
//! frozen at deployment time meets a different distribution every day.
//! This bench simulates that as a **co-drift** stream over several
//! "days" (segments): benign packet sizes drift upward away from their
//! training range while the attack softens toward where benign traffic
//! *used to* live — larger packets, slower pacing, shallower queues. The
//! day-0 decision boundary therefore decays: late-day attacks look like
//! early-day benign. A retrained boundary keeps the classes apart
//! because *current* benign has moved elsewhere.
//!
//! Two identical streaming runs through [`ThreadedPipeline`]:
//!
//! * **frozen** — the day-0 bundle, never swapped (adaptation off);
//! * **adaptive** — same bundle, `with_adaptation`: the aggregator feeds
//!   labeled rows to the shadow trainer, Page–Hinkley watches the benign
//!   distribution, and each drift flag retrains and atomically publishes
//!   a fresh epoch into the live run.
//!
//! Each segment is one `start(...) + join()` episode over the *same*
//! pipeline (shared flow database, shared epoch handle), so a retrain
//! triggered mid-segment is guaranteed published before the next segment
//! streams — the per-day retraining cadence a production deployment
//! would run.
//!
//! Alongside recall, the bench measures the publication layer itself:
//! writer-side swap latency, wait-free reader load latency with a
//! [`stats_alloc`] proof that the reader path allocates nothing, and a
//! concurrent torn-read audit (readers assert `epoch == meta.epoch`, an
//! invariant that only holds if every load observes a fully-published
//! bundle) while a writer publishes in a storm.
//!
//! Writes `BENCH_drift.json` at the repo root. `--check` turns the
//! acceptance gates into process failures: adaptive recall ≥ frozen
//! recall, ≥1 retrain actually published, zero dropped events in both
//! runs, zero torn reads, zero reader-path allocations.
//!
//! Usage: `bench_drift [--fast] [--seed N] [--check]`

use amlight_bench::util::{arg_seed, banner, flag_fast};
use amlight_core::epoch::EpochHandle;
use amlight_core::runtime::{AdaptConfig, ThreadedPipeline};
use amlight_core::source::ReplaySource;
use amlight_core::trainer::{dataset_from_events, train_bundle, ModelBundle, TrainerConfig};
use amlight_core::verdict::RecallCounts;
use amlight_core::DriftConfig;
use amlight_features::FeatureSet;
use amlight_int::{HopMetadata, InstructionSet, TelemetryReport};
use amlight_ml::{MlpConfig, RandomForestConfig};
use amlight_net::{FlowKey, Protocol, TrafficClass};
use serde::Serialize;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counting allocator for the reader-path zero-allocation gate.
#[global_allocator]
static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;

#[derive(Serialize)]
struct RunRecord {
    adaptive: bool,
    events_in: u64,
    flows_created: u64,
    predictions: u64,
    /// events_in == flows_created + predictions, exactly — no event was
    /// dropped anywhere in the pipeline (including across hot swaps).
    accounted: bool,
    attack_updates: u64,
    attack_hits: u64,
    recall: f64,
    false_alarm_rate: f64,
    /// Per-segment recall, to show *where* the frozen boundary decays.
    segment_recall: Vec<f64>,
    drift_events: u64,
    retrains: u64,
    final_epoch: u64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct SwapLatency {
    publishes: u64,
    publish_mean_ns: f64,
    publish_max_ns: u64,
    reader_loads: u64,
    reader_mean_ns: f64,
    /// Allocations across all reader loads (must be 0: the load path is
    /// one atomic Acquire and a stack guard).
    reader_allocs: u64,
}

#[derive(Serialize)]
struct TornReadAudit {
    loads: u64,
    publishes: u64,
    /// Loads where `epoch != bundle.meta.epoch` — an invariant stamped
    /// at publish time, so any mismatch means a torn observation.
    torn: u64,
}

#[derive(Serialize)]
struct DriftBenchReport {
    seed: u64,
    fast: bool,
    host_cpus: usize,
    segments: usize,
    events_per_segment: usize,
    frozen: RunRecord,
    adaptive: RunRecord,
    /// adaptive recall − frozen recall.
    recall_gain: f64,
    /// The headline invariant: retraining never loses recall.
    adaptation_wins: bool,
    swap: SwapLatency,
    torn_audit: TornReadAudit,
}

fn report(port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
    TelemetryReport {
        flow: FlowKey::new(
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        ),
        ip_len: len,
        tcp_flags: Some(0x02),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: 0,
            ingress_tstamp: t_ns as u32,
            egress_tstamp: (t_ns as u32).wrapping_add(400),
            hop_latency: 0,
            queue_occupancy: qocc,
        }]
        .into(),
        export_ns: t_ns,
    }
}

/// Deterministic jitter in [-0.5, 0.5) — a SplitMix64-style finalizer,
/// so consecutive indices decorrelate (a weaker mix produces sawtooth
/// ramps the drift statistic would flag on its own) and the benign
/// baseline is honestly stationary apart from the modeled drift.
fn noise(i: u64) -> f64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 10_000) as f64 / 10_000.0 - 0.5
}

/// Benign observables at drift position `t ∈ [0, 1]`: starts at the
/// training distribution (800-byte packets, quiet queues, 1 ms pacing)
/// and drifts *up and away* to ~1400 bytes.
fn benign_at(t: f64, i: u64) -> (u16, u32, u64) {
    let len = 800.0 + 600.0 * t + 60.0 * noise(i);
    (len as u16, 0, 1_000_000)
}

/// Attack observables at drift position `t`: starts as a classic flood
/// (40-byte packets, deep queues, µs pacing) and *softens toward where
/// benign used to live* — ~700 bytes, near-ms pacing, shallow queues.
/// By the last segment it sits almost exactly on the day-0 benign
/// distribution, which is what breaks the frozen boundary.
fn attack_at(t: f64, i: u64) -> (u16, u32, u64) {
    let len = 40.0 + 660.0 * t + 40.0 * noise(i ^ 0x5A5A);
    let qocc = (20.0 - 18.0 * t).max(0.0) as u32;
    let gap = (3_000.0 + 900_000.0 * t) as u64;
    (len as u16, qocc, gap)
}

/// One co-drifting segment ("day"). `t` advances continuously across
/// the whole stream — so the drift detector sees motion *within* each
/// segment, not just a step at the boundary. Flow ports are per-segment
/// so each day starts fresh flows under the drifted distribution.
fn segment(seg: usize, segments: usize, pairs: usize) -> Vec<(TelemetryReport, TrafficClass)> {
    let total = (segments * pairs) as f64;
    let base = (seg * pairs) as u64;
    let port_base = (seg as u16) * 16;
    let mut v = Vec::with_capacity(pairs * 2);
    let mut attack_t = 0u64;
    for k in 0..pairs as u64 {
        let g = base + k;
        let t = g as f64 / total;
        let (blen, bqocc, bgap) = benign_at(t, g);
        v.push((
            report(1000 + port_base + (k % 5) as u16, k * bgap, blen, bqocc),
            TrafficClass::Benign,
        ));
        let (alen, aqocc, agap) = attack_at(t, g);
        attack_t += agap;
        v.push((
            report(2000 + port_base + (k % 3) as u16, attack_t, alen, aqocc),
            TrafficClass::SynFlood,
        ));
    }
    v.sort_by_key(|(r, _)| r.export_ns);
    v
}

fn trainer_config(fast: bool) -> TrainerConfig {
    TrainerConfig {
        mlp: MlpConfig {
            epochs: if fast { 3 } else { 6 },
            ..MlpConfig::paper_mlp()
        },
        forest: RandomForestConfig {
            n_trees: if fast { 8 } else { 16 },
            ..RandomForestConfig::fast()
        },
        ..Default::default()
    }
}

fn adapt_config(fast: bool) -> AdaptConfig {
    AdaptConfig {
        drift: DriftConfig {
            delta: 0.05,
            lambda: 20.0,
            min_samples: 256,
        },
        trainer: trainer_config(fast),
        max_buffer_rows: 6_000,
        min_train_rows: 512,
        queue_capacity: 4_096,
    }
}

fn fold(acc: &mut RecallCounts, s: &RecallCounts) {
    acc.attack_updates += s.attack_updates;
    acc.attack_hits += s.attack_hits;
    acc.attack_pending += s.attack_pending;
    acc.benign_updates += s.benign_updates;
    acc.benign_false_alarms += s.benign_false_alarms;
    acc.benign_pending += s.benign_pending;
}

/// Stream every segment through one pipeline, one start/join episode per
/// segment — the per-day cadence that lets a mid-segment retrain publish
/// before the next day arrives.
fn run_pipeline(
    bundle: ModelBundle,
    adapt: Option<AdaptConfig>,
    days: &[Vec<(TelemetryReport, TrafficClass)>],
) -> RunRecord {
    let adaptive = adapt.is_some();
    let mut pipe = ThreadedPipeline::new(bundle).with_shards(2);
    if let Some(cfg) = adapt {
        pipe = pipe.with_adaptation(cfg);
    }
    let mut events_in = 0u64;
    let mut flows_created = 0u64;
    let mut predictions = 0u64;
    let mut labeled = RecallCounts::default();
    let mut segment_recall = Vec::with_capacity(days.len());
    let mut drift_events = 0u64;
    let mut retrains = 0u64;
    let start = Instant::now();
    for day in days {
        let stats = match pipe.start(ReplaySource::from_labeled(day)).join() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("streaming run failed: {e}");
                std::process::exit(1);
            }
        };
        events_in += stats.events_in;
        flows_created += stats.flows_created;
        predictions += stats.predictions;
        fold(&mut labeled, &stats.labeled);
        segment_recall.push(stats.labeled.recall());
        drift_events += stats.adapt.drift_events;
        retrains += stats.adapt.retrains;
    }
    let wall = start.elapsed().as_secs_f64();
    RunRecord {
        adaptive,
        events_in,
        flows_created,
        predictions,
        accounted: events_in == flows_created + predictions,
        attack_updates: labeled.attack_updates,
        attack_hits: labeled.attack_hits,
        recall: labeled.recall(),
        false_alarm_rate: labeled.false_alarm_rate(),
        segment_recall,
        drift_events,
        retrains,
        final_epoch: pipe.model_handle().current_epoch(),
        wall_ms: wall * 1e3,
    }
}

/// Writer-side swap latency and reader-side load latency, with the
/// stats_alloc proof that the wait-free reader path allocates nothing.
fn measure_swap(bundle: &ModelBundle, publishes: u64, reader_loads: u64) -> SwapLatency {
    let handle = EpochHandle::new(bundle.clone());
    // Clones prepared outside the measured region — publish() consumes
    // the bundle, and cloning it is training-cadence work, not swap work.
    let fresh: Vec<ModelBundle> = (0..publishes).map(|_| bundle.clone()).collect();
    let mut total_ns = 0u64;
    let mut max_ns = 0u64;
    for b in fresh {
        let t0 = Instant::now();
        handle.publish(b).expect("same feature set");
        let ns = t0.elapsed().as_nanos() as u64;
        total_ns += ns;
        max_ns = max_ns.max(ns);
    }

    let region = stats_alloc::Region::new();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..reader_loads {
        acc = acc.wrapping_add(handle.load().epoch());
    }
    let read_ns = t0.elapsed().as_nanos() as u64;
    let reader_allocs = region.change().acquisitions();
    std::hint::black_box(acc);

    SwapLatency {
        publishes,
        publish_mean_ns: total_ns as f64 / publishes.max(1) as f64,
        publish_max_ns: max_ns,
        reader_loads,
        reader_mean_ns: read_ns as f64 / reader_loads.max(1) as f64,
        reader_allocs,
    }
}

/// Concurrent torn-read audit: readers hammer `load()` asserting the
/// publish-stamped invariant `epoch == bundle.meta.epoch` while a writer
/// publishes continuously. A single mismatch would mean a reader saw a
/// half-published bundle.
fn torn_read_audit(bundle: &ModelBundle, window: Duration) -> TornReadAudit {
    let handle = EpochHandle::new(bundle.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let loads = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let loads = Arc::clone(&loads);
            let torn = Arc::clone(&torn);
            std::thread::spawn(move || {
                let mut n = 0u64;
                let mut bad = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let guard = handle.load();
                    if guard.epoch() != guard.bundle().meta.epoch {
                        bad += 1;
                    }
                    n += 1;
                }
                loads.fetch_add(n, Ordering::Relaxed);
                torn.fetch_add(bad, Ordering::Relaxed);
            })
        })
        .collect();

    let mut publishes = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < window {
        handle.publish(bundle.clone()).expect("same feature set");
        publishes += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let _ = r.join();
    }
    TornReadAudit {
        loads: loads.load(Ordering::Relaxed),
        publishes,
        torn: torn.load(Ordering::Relaxed),
    }
}

fn main() {
    let fast = flag_fast();
    let check = std::env::args().any(|a| a == "--check");
    let seed = arg_seed(20826);
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let segments = if fast { 3 } else { 4 };
    let pairs = if fast { 1_500 } else { 4_000 };

    banner(&format!(
        "model drift: {segments} co-drifting days × {} events, {host_cpus} cpu(s)",
        pairs * 2
    ));

    // Day-0 training capture: the stationary start of the very same
    // distribution the stream then drifts away from.
    let train = segment(0, segments, pairs);
    let bundle = train_bundle(
        &dataset_from_events(&train, FeatureSet::full()),
        FeatureSet::full(),
        &trainer_config(fast),
    );

    let days: Vec<_> = (0..segments).map(|s| segment(s, segments, pairs)).collect();

    let frozen = run_pipeline(bundle.clone(), None, &days);
    let adaptive = run_pipeline(bundle.clone(), Some(adapt_config(fast)), &days);

    println!(
        "{:>9} {:>8} {:>8} {:>9} {:>7} {:>9} {:>9}",
        "run", "events", "recall", "far", "drifts", "retrains", "epoch"
    );
    for r in [&frozen, &adaptive] {
        println!(
            "{:>9} {:>8} {:>8.4} {:>9.4} {:>7} {:>9} {:>9}",
            if r.adaptive { "adaptive" } else { "frozen" },
            r.events_in,
            r.recall,
            r.false_alarm_rate,
            r.drift_events,
            r.retrains,
            r.final_epoch,
        );
    }
    println!("per-segment recall (frozen → adaptive):");
    for (i, (f, a)) in frozen
        .segment_recall
        .iter()
        .zip(&adaptive.segment_recall)
        .enumerate()
    {
        println!("  day {i}: {f:.4} → {a:.4}");
    }

    let swap = measure_swap(&bundle, 32, 200_000);
    println!(
        "swap: publish mean {:.0} ns (max {} ns); reader load mean {:.1} ns, {} alloc(s) over {} loads",
        swap.publish_mean_ns, swap.publish_max_ns, swap.reader_mean_ns, swap.reader_allocs, swap.reader_loads,
    );
    let torn_audit = torn_read_audit(&bundle, Duration::from_millis(if fast { 150 } else { 400 }));
    println!(
        "torn-read audit: {} loads across {} publishes, {} torn",
        torn_audit.loads, torn_audit.publishes, torn_audit.torn
    );

    let recall_gain = adaptive.recall - frozen.recall;
    let adaptation_wins = adaptive.recall >= frozen.recall;
    println!(
        "\nrecall: frozen {:.4} vs adaptive {:.4} → {}",
        frozen.recall,
        adaptive.recall,
        if adaptation_wins {
            "retraining tracks the drift"
        } else {
            "UNEXPECTED: adaptation lost recall"
        }
    );

    let report = DriftBenchReport {
        seed,
        fast,
        host_cpus,
        segments,
        events_per_segment: pairs * 2,
        frozen,
        adaptive,
        recall_gain,
        adaptation_wins,
        swap,
        torn_audit,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_drift.json", json) {
                eprintln!("warn: cannot write BENCH_drift.json: {e}");
            } else {
                eprintln!("(wrote BENCH_drift.json)");
            }
        }
        Err(e) => eprintln!("warn: cannot serialize report: {e}"),
    }

    if check {
        let mut failed = false;
        if !report.adaptation_wins {
            eprintln!(
                "GATE FAIL: adaptive recall {:.4} below frozen {:.4}",
                report.adaptive.recall, report.frozen.recall
            );
            failed = true;
        }
        if report.adaptive.retrains == 0 {
            eprintln!("GATE FAIL: drift never retrained — no epoch was published");
            failed = true;
        }
        if report.adaptive.final_epoch == 0 {
            eprintln!("GATE FAIL: adaptive run ended on the offline epoch");
            failed = true;
        }
        for r in [&report.frozen, &report.adaptive] {
            if !r.accounted {
                eprintln!(
                    "GATE FAIL: {} run dropped events ({} in ≠ {} flows + {} predictions)",
                    if r.adaptive { "adaptive" } else { "frozen" },
                    r.events_in,
                    r.flows_created,
                    r.predictions
                );
                failed = true;
            }
        }
        if report.torn_audit.torn > 0 {
            eprintln!(
                "GATE FAIL: {} torn reads observed under the publish storm",
                report.torn_audit.torn
            );
            failed = true;
        }
        if report.swap.reader_allocs > 0 {
            eprintln!(
                "GATE FAIL: reader load path allocated {} times (expected 0)",
                report.swap.reader_allocs
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("check: all drift gates passed ✓");
    }
}
