//! Error bars for the paper's Table III: 5-fold cross-validation of
//! each model × telemetry source, reported as mean ± std.
//!
//! The paper reports single 90:10 splits; with a 60× size difference
//! between the INT and sFlow test sets, the spread matters when reading
//! four-decimal accuracy cells.
//!
//! Usage: `repro_variance [--fast] [--seed N]`

use amlight_bench::capture::{ExperimentCapture, ExperimentConfig};
use amlight_bench::util::{arg_seed, banner, flag_fast, write_json};
use amlight_core::trainer::dataset_from_events;
use amlight_features::{FeatureId, FeatureSet};
use amlight_ml::{
    cross_validate, CvReport, Dataset, GaussianNb, Mlp, MlpConfig, RandomForest,
    RandomForestConfig, StandardScaler,
};
use serde_json::json;

fn scaled(raw: &Dataset) -> Dataset {
    // CV folds re-split inside; scale globally here (slightly optimistic
    // but identical across models, which is what the comparison needs).
    let mut d = raw.clone();
    StandardScaler::fit_transform(&mut d);
    d
}

fn suite(
    name: &str,
    data: &Dataset,
    k: usize,
    fast: bool,
    seed: u64,
    out: &mut Vec<serde_json::Value>,
) {
    let forest_cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };
    let mlp_cfg = MlpConfig {
        epochs: if fast { 4 } else { 12 },
        batch_size: 256,
        ..MlpConfig::paper_nn()
    };

    let mut row = |model: &str, report: CvReport| {
        println!(
            "{:<6} {:<5}  acc {}   f1 {}",
            name,
            model,
            report.cell(|m| m.accuracy, |s| s.accuracy),
            report.cell(|m| m.f1, |s| s.f1),
        );
        out.push(json!({
            "data": name,
            "model": model,
            "accuracy_mean": report.mean.accuracy,
            "accuracy_std": report.std.accuracy,
            "f1_mean": report.mean.f1,
            "f1_std": report.std.f1,
        }));
    };

    row(
        "RF",
        cross_validate(data, k, seed, |train| {
            RandomForest::fit(train, &forest_cfg, seed)
        }),
    );
    row("GNB", cross_validate(data, k, seed, GaussianNb::fit));
    row(
        "NN",
        cross_validate(data, k, seed, |train| Mlp::fit(train, &mlp_cfg, seed)),
    );
}

/// The queue-blind projection sFlow populates (12 of 15 columns).
fn sflow_set() -> FeatureSet {
    FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
}

fn main() {
    let fast = flag_fast();
    let mut cfg = if fast {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    cfg.seed = arg_seed(cfg.seed);
    let seed = cfg.seed;
    let k = 5;

    let cap = ExperimentCapture::generate(cfg);
    let int = scaled(&dataset_from_events(&cap.int, FeatureSet::full()));
    let sflow = scaled(&dataset_from_events(&cap.sflow, sflow_set()));
    eprintln!("INT rows: {}, sFlow rows: {}", int.len(), sflow.len());

    banner(&format!(
        "Table III with error bars — {k}-fold cross-validation"
    ));
    let mut rows = Vec::new();
    suite("INT", &int, k, fast, seed, &mut rows);
    suite("sFlow", &sflow, k, fast, seed, &mut rows);
    println!(
        "\n(KNN omitted: memorization + 5 refits on the full INT set is the\n\
         cost the paper's own 1/1000 subsample note is about)"
    );
    write_json("variance", &rows);
}
