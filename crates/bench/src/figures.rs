//! Figure reproductions (paper Figs. 3, 4, 5, 7).

use crate::capture::ExperimentCapture;
use amlight_core::pipeline::PipelineReport;
use amlight_core::trainer::dataset_from_events;
use amlight_features::{FeatureId, FeatureSet};
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{ConfusionMatrix, RandomForest, RandomForestConfig, StandardScaler};
use amlight_net::TrafficClass;
use serde::{Deserialize, Serialize};

/// The queue-blind projection sFlow populates (12 of 15 columns).
fn sflow_set() -> FeatureSet {
    FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
}

/// **Figs. 3 & 4**: confusion matrices of the Random Forest model on INT
/// and sFlow test sets (90:10 split).
pub fn fig3_4_confusions(
    cap: &ExperimentCapture,
    fast: bool,
) -> (ConfusionMatrix, ConfusionMatrix) {
    let seed = cap.config.seed;
    let cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };

    let run = |raw: &amlight_ml::Dataset, split_seed: u64| {
        let (train_raw, test_raw) = raw.train_test_split(0.9, split_seed);
        let mut train = train_raw.clone();
        let scaler = StandardScaler::fit_transform(&mut train);
        let mut test = test_raw;
        scaler.transform(&mut test);
        RandomForest::fit(&train, &cfg, seed).evaluate(&test)
    };

    let int = run(
        &dataset_from_events(&cap.int, FeatureSet::full()),
        seed ^ 0x90,
    );
    let sflow = run(&dataset_from_events(&cap.sflow, sflow_set()), seed ^ 0x91);
    (int, sflow)
}

/// One time bucket of the Fig. 5 timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Bucket start, seconds from capture start.
    pub t_s: f64,
    /// Ground truth: is an attack episode active?
    pub truth: bool,
    /// INT coverage: reports in this bucket.
    pub int_reports: usize,
    /// INT prediction: fraction of bucket reports classified attack.
    pub int_attack_frac: f64,
    /// sFlow coverage: samples in this bucket (0 = the sampling gap!).
    pub sflow_samples: usize,
    /// sFlow prediction fraction (None when no samples).
    pub sflow_attack_frac: Option<f64>,
}

/// **Fig. 5**: truth vs RF predictions over time for both telemetry
/// sources. The headline phenomenon: sFlow buckets inside SlowLoris
/// episodes typically have *zero samples* — no data, no prediction.
pub fn fig5_timeline(cap: &ExperimentCapture, buckets: usize, fast: bool) -> Vec<Fig5Point> {
    let seed = cap.config.seed;
    let cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };

    // Train RF on a 90% split of each view; predict the full stream.
    let int_raw = dataset_from_events(&cap.int, FeatureSet::full());
    let sf_raw = dataset_from_events(&cap.sflow, sflow_set());

    let fit_full = |raw: &amlight_ml::Dataset, split_seed: u64| {
        let (train_raw, _) = raw.train_test_split(0.9, split_seed);
        let mut train = train_raw.clone();
        let scaler = StandardScaler::fit_transform(&mut train);
        let model = RandomForest::fit(&train, &cfg, seed);
        (model, scaler)
    };
    let (int_model, int_scaler) = fit_full(&int_raw, seed ^ 0x90);
    let (sf_model, sf_scaler) = fit_full(&sf_raw, seed ^ 0x91);

    let window_ns = cap.schedule.window_ns;
    let bucket_ns = (window_ns / buckets as u64).max(1);
    let mut points: Vec<Fig5Point> = (0..buckets)
        .map(|b| Fig5Point {
            t_s: (b as u64 * bucket_ns) as f64 / 1e9,
            truth: false,
            int_reports: 0,
            int_attack_frac: 0.0,
            sflow_samples: 0,
            sflow_attack_frac: None,
        })
        .collect();

    // Truth per bucket from the schedule.
    for (b, p) in points.iter_mut().enumerate() {
        let mid = b as u64 * bucket_ns + bucket_ns / 2;
        p.truth = cap.schedule.active_at(mid).is_some();
    }

    // INT predictions.
    let mut row = Vec::with_capacity(16);
    let mut int_attacks = vec![0usize; buckets];
    for (i, (report, _)) in cap.int.iter().enumerate() {
        let b = ((report.export_ns / bucket_ns) as usize).min(buckets - 1);
        points[b].int_reports += 1;
        row.clear();
        row.extend_from_slice(int_raw.row(i));
        int_scaler.transform_row(&mut row);
        if int_model.predict_one(&row) {
            int_attacks[b] += 1;
        }
    }
    for (p, &a) in points.iter_mut().zip(&int_attacks) {
        if p.int_reports > 0 {
            p.int_attack_frac = a as f64 / p.int_reports as f64;
        }
    }

    // sFlow predictions.
    let mut sf_attacks = vec![0usize; buckets];
    for (i, (sample, _)) in cap.sflow.iter().enumerate() {
        let b = ((sample.observed_ns / bucket_ns) as usize).min(buckets - 1);
        points[b].sflow_samples += 1;
        row.clear();
        row.extend_from_slice(sf_raw.row(i));
        sf_scaler.transform_row(&mut row);
        if sf_model.predict_one(&row) {
            sf_attacks[b] += 1;
        }
    }
    for (p, &a) in points.iter_mut().zip(&sf_attacks) {
        if p.sflow_samples > 0 {
            p.sflow_attack_frac = Some(a as f64 / p.sflow_samples as f64);
        }
    }

    points
}

/// One prediction of the Fig. 7 scatter: prediction order index vs
/// predicted label for a class replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    pub index: u64,
    /// Final verdict as 0/1; None while smoothing pends.
    pub predicted: Option<u8>,
    pub correct: Option<bool>,
}

/// **Figs. 7a/7b**: per-prediction outcome sequences for a class replay,
/// extracted from a Table VI pipeline report. Misclassifications cluster
/// at flow starts — visible as early `correct == Some(false)` points.
pub fn fig7_distributions(report: &PipelineReport, class: TrafficClass) -> Vec<Fig7Point> {
    report
        .timeline
        .iter()
        .filter(|p| p.truth == class)
        .enumerate()
        .map(|(i, p)| Fig7Point {
            index: i as u64,
            predicted: p.verdict.label().map(u8::from),
            correct: p.verdict.label().map(|l| l == class.label()),
        })
        .collect()
}

/// Render a Fig. 5 timeline as a compact ASCII strip chart (three rows:
/// truth, INT prediction, sFlow prediction; `·` = no data).
pub fn render_fig5_ascii(points: &[Fig5Point]) -> String {
    let cell = |on: bool| if on { '█' } else { ' ' };
    let truth: String = points.iter().map(|p| cell(p.truth)).collect();
    let int: String = points
        .iter()
        .map(|p| cell(p.int_attack_frac >= 0.5))
        .collect();
    let sflow: String = points
        .iter()
        .map(|p| match p.sflow_attack_frac {
            None => '·',
            Some(f) => cell(f >= 0.5),
        })
        .collect();
    format!("truth |{truth}|\nINT   |{int}|\nsFlow |{sflow}|\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{ExperimentCapture, ExperimentConfig};
    use crate::tables::table6_automated;
    use amlight_core::pipeline::PipelineConfig;

    fn cap() -> ExperimentCapture {
        ExperimentCapture::generate(ExperimentConfig::smoke())
    }

    #[test]
    fn confusions_total_matches_test_sets() {
        let c = cap();
        let (int, sflow) = fig3_4_confusions(&c, true);
        assert!(int.total() > 0);
        assert!(sflow.total() > 0);
        assert!(int.total() > sflow.total(), "INT sees far more packets");
        assert!(int.accuracy() > 0.8);
    }

    #[test]
    fn fig5_buckets_cover_window_and_flag_gaps() {
        let c = cap();
        let points = fig5_timeline(&c, 60, true);
        assert_eq!(points.len(), 60);
        assert!(points.iter().any(|p| p.truth), "some buckets under attack");
        assert!(points.iter().any(|p| !p.truth));
        // sFlow must have coverage gaps at this sampling rate.
        assert!(
            points.iter().any(|p| p.sflow_samples == 0),
            "expected empty sFlow buckets"
        );
        // INT should cover nearly every bucket.
        let int_covered = points.iter().filter(|p| p.int_reports > 0).count();
        assert!(int_covered * 10 >= points.len() * 8);
    }

    #[test]
    fn fig5_ascii_renders_three_rows() {
        let c = cap();
        let points = fig5_timeline(&c, 40, true);
        let art = render_fig5_ascii(&points);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('█'));
    }

    #[test]
    fn fig7_extracts_class_series() {
        let (_, reports) = table6_automated(120, PipelineConfig::rust_pace(), true, 5);
        // reports are ordered by TrafficClass::ALL.
        let benign_report = &reports[0];
        let series = fig7_distributions(benign_report, TrafficClass::Benign);
        assert!(!series.is_empty());
        // Indices are sequential.
        for (i, p) in series.iter().enumerate() {
            assert_eq!(p.index, i as u64);
        }
        // Early points pend (smoothing warm-up).
        assert_eq!(series[0].predicted, None);
    }
}
