//! Table reproductions (paper Tables I–VI).

use crate::capture::ExperimentCapture;
use amlight_core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight_features::{FeatureId, FeatureSet};
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{
    permutation_importance, top_k_features, BinaryMetrics, ConfusionMatrix, Dataset, GaussianNb,
    Knn, Mlp, MlpConfig, RandomForest, RandomForestConfig, StandardScaler,
};
use amlight_net::TrafficClass;
use amlight_traffic::{AttackKind, EpisodeSchedule, ReplayLibrary};
use serde::{Deserialize, Serialize};

/// The queue-blind projection sFlow populates (12 of 15 columns).
fn sflow_set() -> FeatureSet {
    FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS)
}

/// One row of Tables III/IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRow {
    pub data: &'static str,
    pub model: &'static str,
    pub metrics: BinaryMetrics,
    pub confusion: ConfusionMatrix,
    pub test_rows: usize,
}

impl MetricsRow {
    pub fn render(&self) -> String {
        format!(
            "{:<6} {:<5} {}   (n={})",
            self.data,
            self.model,
            self.metrics.row(),
            self.test_rows
        )
    }
}

/// Models trained for the comparison tables. `fast` trims epochs/trees
/// for smoke tests.
fn model_suite(
    train: &Dataset,
    fast: bool,
    seed: u64,
) -> Vec<(&'static str, Box<dyn BinaryClassifier>)> {
    let forest_cfg = if fast {
        RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::fast()
        }
    } else {
        RandomForestConfig::fast()
    };
    let mlp_cfg = MlpConfig {
        epochs: if fast { 5 } else { 20 },
        batch_size: 256,
        ..MlpConfig::paper_nn()
    };
    // Paper (Table III note): KNN runs on one-thousandth of the sample.
    // Our compressed capture is ~1000× smaller than the paper's, so the
    // equivalent budget is a couple thousand memorized rows.
    let knn_fraction = (2_000.0 / train.len() as f64).clamp(0.001, 1.0);

    vec![
        (
            "RF",
            Box::new(RandomForest::fit(train, &forest_cfg, seed)) as Box<dyn BinaryClassifier>,
        ),
        ("GNB", Box::new(GaussianNb::fit(train))),
        (
            "KNN",
            Box::new(Knn::fit_subsampled(train, 5, knn_fraction, seed ^ 0x3)),
        ),
        ("NN", Box::new(Mlp::fit(train, &mlp_cfg, seed ^ 0x7))),
    ]
}

fn evaluate_suite(
    data_name: &'static str,
    train_raw: &Dataset,
    test_raw: &Dataset,
    fast: bool,
    seed: u64,
) -> Vec<MetricsRow> {
    // Scale on train statistics only (no test leakage).
    let mut train = train_raw.clone();
    let scaler = StandardScaler::fit_transform(&mut train);
    let mut test = test_raw.clone();
    scaler.transform(&mut test);

    model_suite(&train, fast, seed)
        .into_iter()
        .map(|(name, model)| {
            let confusion = model.evaluate(&test);
            MetricsRow {
                data: data_name,
                model: name,
                metrics: confusion.metrics(),
                confusion,
                test_rows: test.len(),
            }
        })
        .collect()
}

/// **Table III**: INT vs sFlow across four models, 90:10 random split.
pub fn table3_comparison(cap: &ExperimentCapture, fast: bool) -> Vec<MetricsRow> {
    let seed = cap.config.seed;
    let int_raw = dataset_from_events(&cap.int, FeatureSet::full());
    let sflow_raw = dataset_from_events(&cap.sflow, sflow_set());

    let (int_train, int_test) = int_raw.train_test_split(0.9, seed ^ 0x90);
    let (sf_train, sf_test) = sflow_raw.train_test_split(0.9, seed ^ 0x91);

    let mut rows = evaluate_suite("INT", &int_train, &int_test, fast, seed);
    rows.extend(evaluate_suite("sFlow", &sf_train, &sf_test, fast, seed));
    // Interleave INT/sFlow per model, like the paper's table layout.
    let order = ["RF", "GNB", "KNN", "NN"];
    rows.sort_by_key(|r| {
        (
            order.iter().position(|m| *m == r.model).unwrap_or(9),
            r.data != "INT",
        )
    });
    rows
}

/// **Table IV**: zero-day evaluation — train on day 0, test on day 1
/// (SlowLoris never seen in training).
pub fn table4_zero_day(cap: &ExperimentCapture, fast: bool) -> Vec<MetricsRow> {
    let seed = cap.config.seed;
    let (int_train_l, int_test_l) = cap.int_split_by_day();
    let (sf_train_l, sf_test_l) = cap.sflow_split_by_day();

    let int_train = dataset_from_events(&int_train_l, FeatureSet::full());
    let int_test = dataset_from_events(&int_test_l, FeatureSet::full());
    let sf_train = dataset_from_events(&sf_train_l, sflow_set());
    let sf_test = dataset_from_events(&sf_test_l, sflow_set());

    let mut rows = evaluate_suite("INT", &int_train, &int_test, fast, seed);
    rows.extend(evaluate_suite("sFlow", &sf_train, &sf_test, fast, seed));
    let order = ["RF", "GNB", "KNN", "NN"];
    rows.sort_by_key(|r| {
        (
            order.iter().position(|m| *m == r.model).unwrap_or(9),
            r.data != "INT",
        )
    });
    rows
}

/// One model's top-k features (paper Table V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceRow {
    pub model: &'static str,
    /// (feature name, score), descending.
    pub top: Vec<(String, f64)>,
}

/// **Table V**: the five most important features per model, INT data.
///
/// RF uses native mean-decrease-in-impurity; GNB/KNN/NN use permutation
/// importance on a held-out subsample.
pub fn table5_importance(cap: &ExperimentCapture, fast: bool) -> Vec<ImportanceRow> {
    let seed = cap.config.seed;
    let raw = dataset_from_events(&cap.int, FeatureSet::full());
    let (train_raw, test_raw) = raw.train_test_split(0.9, seed ^ 0x90);
    let mut train = train_raw.clone();
    let scaler = StandardScaler::fit_transform(&mut train);
    // Permutation importance is O(features × repeats × |test|): subsample.
    let mut test = test_raw.subsample((4_000.0 / test_raw.len() as f64).clamp(0.01, 1.0), seed);
    scaler.transform(&mut test);

    let names: Vec<String> = FeatureSet::full()
        .features()
        .iter()
        .map(|f| f.name().to_string())
        .collect();
    let top5 = |scores: &[f64]| -> Vec<(String, f64)> {
        top_k_features(scores, 5)
            .into_iter()
            .map(|i| (names[i].clone(), scores[i]))
            .collect()
    };

    let mut rows = Vec::new();
    for (name, model) in model_suite(&train, fast, seed) {
        let scores = if name == "RF" {
            // Refit to grab native importances (the suite erased the type).
            let cfg = if fast {
                RandomForestConfig {
                    n_trees: 10,
                    ..RandomForestConfig::fast()
                }
            } else {
                RandomForestConfig::fast()
            };
            RandomForest::fit(&train, &cfg, seed).feature_importances()
        } else {
            permutation_importance(model.as_ref(), &test, if fast { 1 } else { 2 }, seed ^ 0x5)
        };
        rows.push(ImportanceRow {
            model: name,
            top: top5(&scores),
        });
    }
    rows
}

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    pub class: TrafficClass,
    pub accuracy: f64,
    pub misclassified: u64,
    pub predicted: u64,
    pub avg_prediction_s: f64,
    /// Max prediction time — for benign flows the paper reports the 99th
    /// percentile instead (its table note); so do we.
    pub max_prediction_s: f64,
    pub max_is_p99: bool,
}

impl Table6Row {
    pub fn render(&self) -> String {
        format!(
            "{:<10} {:.4}   {:>6}/{:<6}   {:>10.2}   {:>10.2}{}",
            self.class.name(),
            self.accuracy,
            self.misclassified,
            self.predicted,
            self.avg_prediction_s,
            self.max_prediction_s,
            if self.max_is_p99 { " (p99)" } else { "" },
        )
    }
}

/// **Table VI**: the automated mechanism on the testbed — per-class
/// accuracy and prediction latency from per-class `tcpreplay` runs.
///
/// Procedure mirrors §IV-C: train the bundle offline on a capture replay
/// **without SlowLoris** (zero-day), then replay ~`packets_per_class`
/// packets of each flow type through the live pipeline.
pub fn table6_automated(
    packets_per_class: usize,
    pace: PipelineConfig,
    fast: bool,
    seed: u64,
) -> (Vec<Table6Row>, Vec<amlight_core::pipeline::PipelineReport>) {
    let lab = Testbed::new(TestbedConfig::default());

    // Offline training set: per §IV-C.2 the paper *replays* segments of
    // each flow type on the testbed and trains on that — so do we, from
    // an independent replay (different seed), minus SlowLoris (the
    // designated zero-day attack).
    let train_lib = ReplayLibrary::build(packets_per_class * if fast { 2 } else { 4 }, seed ^ 0x77);
    let mut train_labeled = Vec::new();
    for class in TrafficClass::ALL {
        if class == TrafficClass::SlowLoris {
            continue;
        }
        train_labeled.extend(lab.replay_class(&train_lib, class));
    }
    let train_raw = dataset_from_events(&train_labeled, FeatureSet::full());
    let trainer_cfg = TrainerConfig {
        mlp: MlpConfig {
            epochs: if fast { 5 } else { 20 },
            batch_size: 256,
            ..MlpConfig::paper_mlp()
        },
        forest: if fast {
            RandomForestConfig {
                n_trees: 10,
                ..RandomForestConfig::fast()
            }
        } else {
            RandomForestConfig::fast()
        },
        seed,
    };
    let bundle = train_bundle(&train_raw, FeatureSet::full(), &trainer_cfg);

    // Replay each class and run the pipeline.
    let library = ReplayLibrary::build(packets_per_class, seed ^ 0x6);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for class in TrafficClass::ALL {
        let labeled = lab.replay_class(&library, class);
        let mut pipe = DetectionPipeline::new(bundle.clone(), pace);
        let report = pipe.run_sync(&labeled);
        let s = report.class_summary(class);
        let benign = class == TrafficClass::Benign;
        rows.push(Table6Row {
            class,
            accuracy: s.accuracy(),
            misclassified: s.misclassified,
            predicted: s.predicted,
            avg_prediction_s: s.avg_latency_s,
            max_prediction_s: if benign {
                s.p99_latency_s
            } else {
                s.max_latency_s
            },
            max_is_p99: benign,
        });
        reports.push(report);
    }
    // Paper's row order: UDP Scan, SYN Scan, SYN Flood, SlowLoris, Benign.
    let order = [
        TrafficClass::UdpScan,
        TrafficClass::SynScan,
        TrafficClass::SynFlood,
        TrafficClass::SlowLoris,
        TrafficClass::Benign,
    ];
    rows.sort_by_key(|r| order.iter().position(|c| *c == r.class).unwrap());
    (rows, reports)
}

/// **Table I**: the episode schedule actually generated.
pub fn table1_schedule(day_len_s: u64) -> Vec<String> {
    let s = EpisodeSchedule::table1(day_len_s);
    s.episodes
        .iter()
        .map(|e| {
            format!(
                "{:<10}  day {}  {:>8.2}s – {:>8.2}s  ({:.2}s)",
                e.kind.name(),
                e.day,
                e.start_ns as f64 / 1e9,
                e.end_ns as f64 / 1e9,
                e.duration_ns() as f64 / 1e9,
            )
        })
        .collect()
}

/// **Table II**: feature availability matrix, INT vs sFlow.
pub fn table2_features() -> Vec<String> {
    FeatureId::ALL
        .into_iter()
        .map(|f| {
            format!(
                "{:<26} INT: ✓   sFlow: {}",
                f.name(),
                if sflow_set().contains(f) {
                    "✓"
                } else {
                    "✗"
                }
            )
        })
        .collect()
}

/// Attack kinds in the Table I schedule (re-exported for binaries).
pub fn schedule_attacks() -> [AttackKind; 4] {
    AttackKind::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{ExperimentCapture, ExperimentConfig};

    fn cap() -> ExperimentCapture {
        ExperimentCapture::generate(ExperimentConfig::smoke())
    }

    #[test]
    fn table3_produces_eight_rows_with_sane_metrics() {
        let rows = table3_comparison(&cap(), true);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.metrics.accuracy >= 0.0 && r.metrics.accuracy <= 1.0);
            assert!(r.test_rows > 0);
        }
        // INT RF should be strong even on the smoke capture.
        let int_rf = rows
            .iter()
            .find(|r| r.data == "INT" && r.model == "RF")
            .unwrap();
        assert!(int_rf.metrics.f1 > 0.9, "INT/RF F1 {}", int_rf.metrics.f1);
    }

    #[test]
    fn table4_trains_without_slowloris() {
        let rows = table4_zero_day(&cap(), true);
        assert_eq!(rows.len(), 8);
        let int_rf = rows
            .iter()
            .find(|r| r.data == "INT" && r.model == "RF")
            .unwrap();
        assert!(
            int_rf.metrics.accuracy > 0.85,
            "INT/RF zero-day accuracy {}",
            int_rf.metrics.accuracy
        );
    }

    #[test]
    fn table5_returns_top5_per_model() {
        let rows = table5_importance(&cap(), true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.top.len(), 5);
            // Descending scores.
            for w in r.top.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn table1_lists_eleven_episodes() {
        assert_eq!(table1_schedule(60).len(), 11);
    }

    #[test]
    fn table2_lists_fifteen_features() {
        let rows = table2_features();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows.iter().filter(|r| r.contains('✗')).count(), 3);
    }

    #[test]
    fn table6_smoke_run_covers_all_classes() {
        let (rows, _) = table6_automated(150, PipelineConfig::rust_pace(), true, 3);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.predicted + r.misclassified > 0 || r.predicted == 0);
            assert!(r.avg_prediction_s >= 0.0);
            // Epsilon allows for mean-accumulation rounding when all
            // latencies are identical.
            assert!(r.max_prediction_s >= r.avg_prediction_s - 1e-9 || r.max_is_p99);
        }
        // Attack detection should mostly work even in the smoke config.
        let flood = rows
            .iter()
            .find(|r| r.class == TrafficClass::SynFlood)
            .unwrap();
        assert!(flood.accuracy > 0.7, "flood accuracy {}", flood.accuracy);
    }
}
