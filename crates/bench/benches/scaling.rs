//! Parallel-scaling benchmarks: the sharded flow processor across shard
//! counts — the concrete answer to the paper's §V call for "faster
//! processing capabilities" at production volume.

use amlight_core::batch::BatchDetector;
use amlight_core::event::Telemetry;
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight_features::{FeatureSet, FlowTableConfig, FlowUpdate, ShardedFlowTable};
use amlight_int::IntInstrumenter;
use amlight_ml::MlpConfig;
use amlight_net::Trace;
use amlight_net::TrafficClass;
use amlight_sim::{NetworkSim, Topology};
use amlight_traffic::ReplayLibrary;
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

fn telemetry(packets: usize) -> Vec<amlight_int::TelemetryReport> {
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(3, 7));
    let trace: Trace = mix
        .generate()
        .records()
        .iter()
        .take(packets)
        .copied()
        .collect();
    let (topo, _, _) = Topology::testbed();
    let sim = NetworkSim::new(topo).run(&trace);
    IntInstrumenter::amlight().instrument(&trace, &sim)
}

fn bench_sharded_scaling(c: &mut Criterion) {
    let reports = telemetry(50_000);
    let updates: Vec<FlowUpdate> = reports.iter().map(|r| r.flow_update()).collect();
    let mut g = c.benchmark_group("sharded_flow_table");
    g.throughput(Throughput::Elements(updates.len() as u64));
    g.sample_size(20);
    for shards in [1usize, 2, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || ShardedFlowTable::new(FlowTableConfig::default(), shards),
                    |mut table| table.apply_batch(&updates),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_batch_detector(c: &mut Criterion) {
    // Train once, then measure the full sharded detect path per shard
    // count.
    let lab = Testbed::new(TestbedConfig::default());
    let lib = ReplayLibrary::build(800, 17);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&lib, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 4,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    let reports = telemetry(30_000);

    let mut g = c.benchmark_group("batch_detector");
    g.throughput(Throughput::Elements(reports.len() as u64));
    g.sample_size(15);
    for shards in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || BatchDetector::new(bundle.clone(), FlowTableConfig::default(), shards),
                    |mut det| det.detect_batch(&reports),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_scaling, bench_batch_detector);
criterion_main!(benches);
