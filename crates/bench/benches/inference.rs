//! Single-row vs batched inference on the detection hot path.
//!
//! Each model scores the same block of rows twice: once through the
//! per-row `predict_proba_one` loop (the pre-batching shape of the hot
//! path) and once through the columnar `predict_proba_batch`. The
//! `ensemble` group does the same for the full scale-then-2-of-3-vote
//! decision the pipeline actually runs per flow update.

use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{
    dataset_from_events, train_bundle, ModelBundle, TrainerConfig, VoteScratch,
};
use amlight_features::FeatureSet;
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{
    Dataset, GaussianNb, Knn, Mlp, MlpConfig, RandomForest, RandomForestConfig, StandardScaler,
};
use amlight_net::TrafficClass;
use amlight_traffic::ReplayLibrary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 1024;

struct Fixture {
    scaled: Dataset,
    raw: Dataset,
    bundle: ModelBundle,
}

fn fixture() -> Fixture {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(900, 41);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let mut scaled = raw.clone();
    let _ = StandardScaler::fit_transform(&mut scaled);
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 8,
                batch_size: 256,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    Fixture {
        scaled,
        raw,
        bundle,
    }
}

/// The first `BATCH` rows of `d`, cycled if the dataset is smaller.
fn block(d: &Dataset) -> (Vec<f64>, usize) {
    let nf = d.n_features();
    let mut rows = Vec::with_capacity(BATCH * nf);
    for i in 0..BATCH {
        rows.extend_from_slice(d.row(i % d.len()));
    }
    (rows, nf)
}

fn bench_models(c: &mut Criterion) {
    let f = fixture();
    let (rows, nf) = block(&f.scaled);

    let models: Vec<(&str, Box<dyn BinaryClassifier>)> = vec![
        (
            "rf",
            Box::new(RandomForest::fit(&f.scaled, &RandomForestConfig::fast(), 1)),
        ),
        ("gnb", Box::new(GaussianNb::fit(&f.scaled))),
        ("knn", Box::new(Knn::fit_subsampled(&f.scaled, 5, 0.05, 1))),
        (
            "mlp",
            Box::new(Mlp::fit(
                &f.scaled,
                &MlpConfig {
                    epochs: 3,
                    ..MlpConfig::paper_nn()
                },
                1,
            )),
        ),
    ];

    let mut g = c.benchmark_group("inference");
    g.throughput(Throughput::Elements(BATCH as u64));
    for (name, model) in &models {
        g.bench_with_input(BenchmarkId::new("single", name), model, |b, m| {
            let mut out = vec![0.0f64; BATCH];
            b.iter(|| {
                for (row, o) in rows.chunks_exact(nf).zip(out.iter_mut()) {
                    *o = m.predict_proba_one(std::hint::black_box(row));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("batched", name), model, |b, m| {
            let mut out = vec![0.0f64; BATCH];
            b.iter(|| m.predict_proba_batch(std::hint::black_box(&rows), nf, &mut out))
        });
    }
    g.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let f = fixture();
    let (rows, nf) = block(&f.raw);

    let mut g = c.benchmark_group("ensemble_batch");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("single", |b| {
        let mut out = vec![false; BATCH];
        b.iter(|| {
            for (row, o) in rows.chunks_exact(nf).zip(out.iter_mut()) {
                *o = f.bundle.ensemble_vote(std::hint::black_box(row));
            }
        })
    });
    g.bench_function("batched", |b| {
        let mut scratch = VoteScratch::default();
        let mut out = Vec::with_capacity(BATCH);
        b.iter(|| {
            f.bundle
                .votes_batch(std::hint::black_box(&rows), nf, &mut scratch, &mut out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_models, bench_ensemble);
criterion_main!(benches);
