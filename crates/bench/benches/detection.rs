//! Detection-side microbenchmarks: per-model prediction latency, ensemble
//! voting, training time, and the end-to-end pipeline rate.
//!
//! The paper dropped KNN from the live testbed "because of its relatively
//! slower prediction times" (§IV-C.3) — the `predict_one` group puts a
//! number on that decision.

use amlight_core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight_core::testbed::{Testbed, TestbedConfig};
use amlight_core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight_features::FeatureSet;
use amlight_ml::model::BinaryClassifier;
use amlight_ml::{
    GaussianNb, Knn, Mlp, MlpConfig, RandomForest, RandomForestConfig, StandardScaler,
};
use amlight_net::TrafficClass;
use amlight_traffic::ReplayLibrary;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

struct Fixture {
    scaled_train: amlight_ml::Dataset,
    sample_row: Vec<f64>,
    labeled: Vec<(amlight_int::TelemetryReport, TrafficClass)>,
    bundle: amlight_core::trainer::ModelBundle,
}

fn fixture() -> Fixture {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(800, 31);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let mut scaled_train = raw.clone();
    let _ = StandardScaler::fit_transform(&mut scaled_train);
    let sample_row = scaled_train.row(scaled_train.len() / 2).to_vec();

    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 8,
                batch_size: 256,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    let labeled = lab.replay_class(&ReplayLibrary::build(2000, 32), TrafficClass::Benign);
    Fixture {
        scaled_train,
        sample_row,
        labeled,
        bundle,
    }
}

fn bench_predict_one(c: &mut Criterion) {
    let f = fixture();
    let rf = RandomForest::fit(&f.scaled_train, &RandomForestConfig::fast(), 1);
    let gnb = GaussianNb::fit(&f.scaled_train);
    let knn = Knn::fit_subsampled(&f.scaled_train, 5, 0.05, 1);
    let mlp = Mlp::fit(
        &f.scaled_train,
        &MlpConfig {
            epochs: 3,
            ..MlpConfig::paper_nn()
        },
        1,
    );

    let mut g = c.benchmark_group("predict_one");
    g.throughput(Throughput::Elements(1));
    let row = &f.sample_row;
    g.bench_function("rf_25_trees", |b| {
        b.iter(|| rf.predict_one(std::hint::black_box(row)))
    });
    g.bench_function("gnb", |b| {
        b.iter(|| gnb.predict_one(std::hint::black_box(row)))
    });
    g.bench_function("knn_memorized", |b| {
        b.iter(|| knn.predict_one(std::hint::black_box(row)))
    });
    g.bench_function("mlp_32_16_8", |b| {
        b.iter(|| mlp.predict_one(std::hint::black_box(row)))
    });
    g.finish();
}

fn bench_ensemble_vote(c: &mut Criterion) {
    let f = fixture();
    // Raw (unscaled) row, as the pipeline feeds the bundle.
    let raw_row: Vec<f64> = vec![
        6.0, 40.0, 400.0, 40.0, 0.0, 0.001, 0.01, 0.001, 0.0, 0.0, 0.0, 0.0, 10.0, 1000.0, 40000.0,
    ];
    let mut g = c.benchmark_group("ensemble");
    g.throughput(Throughput::Elements(1));
    g.bench_function("scale_plus_2of3_vote", |b| {
        b.iter(|| f.bundle.ensemble_vote(std::hint::black_box(&raw_row)))
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("rf_25_trees", |b| {
        b.iter(|| RandomForest::fit(&f.scaled_train, &RandomForestConfig::fast(), 3))
    });
    g.bench_function("gnb", |b| b.iter(|| GaussianNb::fit(&f.scaled_train)));
    g.bench_function("mlp_3_epochs", |b| {
        b.iter(|| {
            Mlp::fit(
                &f.scaled_train,
                &MlpConfig {
                    epochs: 3,
                    batch_size: 256,
                    ..MlpConfig::paper_mlp()
                },
                3,
            )
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.labeled.len() as u64));
    g.bench_function("run_sync_benign_replay", |b| {
        b.iter_batched(
            || DetectionPipeline::new(f.bundle.clone(), PipelineConfig::rust_pace()),
            |mut pipe| pipe.run_sync(std::hint::black_box(&f.labeled)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predict_one,
    bench_ensemble_vote,
    bench_training,
    bench_pipeline,
);
criterion_main!(benches);
