//! Substrate throughput microbenchmarks: packet codec, dataplane
//! simulation, INT collector decode, sFlow sampling, flow-table updates.
//!
//! These quantify the "faster processing capabilities" headroom the
//! paper's §V asks for: the Rust collector and feature path must sustain
//! production AmLight volumes (~1.3 M packets/s of telemetry).

use amlight_core::event::Telemetry;
use amlight_features::{FlowTable, FlowTableConfig};
use amlight_int::{IntCollector, IntInstrumenter};
use amlight_net::{Decode, Encode, Packet, PacketBuilder, Trace, TrafficClass};
use amlight_sflow::{SamplingMode, SflowAgent};
use amlight_sim::{NetworkSim, Topology};
use amlight_traffic::{TrafficMix, TrafficMixConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::Ipv4Addr;

fn mixed_trace(packets: usize) -> Trace {
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(2, 99));
    let full = mix.generate();
    full.records().iter().take(packets).copied().collect()
}

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        .tcp_syn(40000, 80, 7);
    let bytes = pkt.encode_to_bytes().freeze();

    let mut g = c.benchmark_group("packet_codec");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(&pkt).encode_to_bytes())
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut cursor = bytes.clone();
            Packet::decode(&mut cursor).unwrap()
        })
    });
    g.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let trace = mixed_trace(20_000);
    let mut g = c.benchmark_group("dataplane");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("simulate_20k_packets", |b| {
        b.iter_batched(
            || {
                let (topo, _, _) = Topology::testbed();
                NetworkSim::new(topo)
            },
            |mut sim| sim.run(std::hint::black_box(&trace)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_int_collector(c: &mut Criterion) {
    let trace = mixed_trace(10_000);
    let (topo, _, _) = Topology::testbed();
    let sim_report = NetworkSim::new(topo).run(&trace);
    let reports = IntInstrumenter::amlight().instrument(&trace, &sim_report);
    let stream = IntCollector::encode_stream(&reports);

    let mut g = c.benchmark_group("int_collector");
    g.throughput(Throughput::Elements(reports.len() as u64));
    g.bench_function("decode_stream", |b| {
        b.iter(|| {
            let mut collector = IntCollector::new();
            let out = collector.ingest(std::hint::black_box(&stream));
            assert_eq!(out.len(), reports.len());
            out
        })
    });
    g.finish();
}

fn bench_sflow_agent(c: &mut Criterion) {
    let trace = mixed_trace(50_000);
    let mut g = c.benchmark_group("sflow_agent");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("observe_1_in_4096", |b| {
        b.iter_batched(
            || SflowAgent::amlight(7),
            |mut agent| {
                let mut n = 0usize;
                for r in trace.iter() {
                    if agent.observe(r.ts_ns, &r.packet).is_some() {
                        n += 1;
                    }
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("observe_deterministic_1_in_64", |b| {
        b.iter_batched(
            || {
                SflowAgent::new(
                    SamplingMode::Deterministic {
                        period: 64,
                        phase: 0,
                    },
                    7,
                )
            },
            |mut agent| {
                trace
                    .iter()
                    .filter(|r| agent.observe(r.ts_ns, &r.packet).is_some())
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let trace = mixed_trace(20_000);
    let (topo, _, _) = Topology::testbed();
    let sim_report = NetworkSim::new(topo).run(&trace);
    let reports = IntInstrumenter::amlight().instrument(&trace, &sim_report);

    let mut g = c.benchmark_group("flow_table");
    g.throughput(Throughput::Elements(reports.len() as u64));
    g.bench_function("flow_apply_20k", |b| {
        b.iter_batched(
            || FlowTable::new(FlowTableConfig::default()),
            |mut table| {
                for r in &reports {
                    table.apply(&std::hint::black_box(r).flow_update());
                }
                table.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("update_and_extract_features", |b| {
        b.iter_batched(
            || {
                (
                    FlowTable::new(FlowTableConfig::default()),
                    Vec::with_capacity(16),
                )
            },
            |(mut table, mut buf)| {
                let mut acc = 0.0f64;
                for r in &reports {
                    let (_, rec) = table.apply(&r.flow_update());
                    buf.clear();
                    rec.features()
                        .project_into(amlight_features::FeatureSet::full(), &mut buf);
                    acc += buf[1];
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn sanity_class_mix(c: &mut Criterion) {
    // Not a hot path: just pins the trace composition so the throughput
    // numbers above are interpretable across runs.
    let trace = mixed_trace(20_000);
    let stats = trace.stats();
    assert!(stats.per_class.contains_key(&TrafficClass::Benign));
    c.bench_function("trace_stats", |b| {
        b.iter(|| std::hint::black_box(&trace).stats())
    });
}

criterion_group!(
    benches,
    bench_packet_codec,
    bench_dataplane,
    bench_int_collector,
    bench_sflow_agent,
    bench_flow_table,
    sanity_class_mix,
);
criterion_main!(benches);
