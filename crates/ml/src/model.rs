//! The classifier interface shared by every model and the ensemble.

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;

/// Check the row-major batch geometry shared by every
/// [`BinaryClassifier::predict_proba_batch`] implementation:
/// `rows` holds `out.len()` rows of `n_features` values each.
#[inline]
pub(crate) fn check_batch_shape(rows: &[f64], n_features: usize, n_out: usize) {
    assert!(
        n_features > 0 || n_out == 0,
        "batch rows need at least one feature"
    );
    assert_eq!(
        rows.len(),
        n_features * n_out,
        "batch shape mismatch: {} values is not {} rows × {} features",
        rows.len(),
        n_out,
        n_features
    );
}

/// A trained binary classifier. "Positive" (`true`) = attack flow.
pub trait BinaryClassifier: Send + Sync {
    /// Probability-like score in [0, 1] for one feature vector.
    fn predict_proba_one(&self, x: &[f64]) -> f64;

    /// Probability-like scores for a contiguous row-major batch:
    /// `rows` holds `out.len()` rows of `n_features` values each, and one
    /// score per row is written into the caller-owned `out`.
    ///
    /// This is the detection hot path. Implementations must be
    /// *bit-identical* to calling [`predict_proba_one`] row by row —
    /// batching is a layout/throughput optimization, never a semantic
    /// change. The default does exactly that delegation; the concrete
    /// models override it with columnar traversals.
    ///
    /// [`predict_proba_one`]: BinaryClassifier::predict_proba_one
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        for (row, o) in rows.chunks_exact(n_features).zip(out.iter_mut()) {
            *o = self.predict_proba_one(row);
        }
    }

    /// Hard decision at the 0.5 threshold.
    fn predict_one(&self, x: &[f64]) -> bool {
        decide(self.predict_proba_one(x))
    }

    /// Model family name for report tables.
    fn name(&self) -> &'static str;

    /// Predict a whole dataset (batched path).
    fn predict(&self, data: &Dataset) -> Vec<bool> {
        let mut proba = vec![0.0; data.len()];
        self.predict_proba_batch(data.raw(), data.n_features(), &mut proba);
        proba.into_iter().map(decide).collect()
    }

    /// Evaluate against a labeled dataset (batched path).
    fn evaluate(&self, data: &Dataset) -> ConfusionMatrix {
        let mut proba = vec![0.0; data.len()];
        self.predict_proba_batch(data.raw(), data.n_features(), &mut proba);
        let mut m = ConfusionMatrix::new();
        for (&p, &label) in proba.iter().zip(data.labels()) {
            m.record(label, decide(p));
        }
        m
    }
}

/// The one place a probability becomes a vote. NaN (a poisoned feature
/// that survived scaling) is clamped to a benign vote rather than left
/// to IEEE comparison semantics, so no unclamped NaN ever flows into
/// the ensemble (amlint rule R3). For real probabilities this is
/// exactly `p >= 0.5`.
#[inline]
pub fn decide(p: f64) -> bool {
    !p.is_nan() && p >= 0.5
}

impl<T: BinaryClassifier + ?Sized> BinaryClassifier for Box<T> {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        (**self).predict_proba_one(x)
    }

    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        (**self).predict_proba_batch(rows, n_features, out)
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        (**self).predict_one(x)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Threshold on the first feature — a handy stub.
    pub struct FirstFeatureStub {
        pub threshold: f64,
    }

    impl BinaryClassifier for FirstFeatureStub {
        fn predict_proba_one(&self, x: &[f64]) -> f64 {
            if x[0] > self.threshold {
                1.0
            } else {
                0.0
            }
        }

        fn name(&self) -> &'static str {
            "Stub"
        }
    }

    /// A linearly separable two-blob dataset: negatives around `-c`,
    /// positives around `+c` on every axis, with deterministic jitter.
    pub fn blobs(n_per_class: usize, n_features: usize, c: f64) -> Dataset {
        let mut d = Dataset::new(n_features);
        for i in 0..n_per_class {
            let jitter = |k: usize| ((i * 31 + k * 17) % 100) as f64 / 100.0 - 0.5;
            let neg: Vec<f64> = (0..n_features).map(|k| -c + jitter(k)).collect();
            let pos: Vec<f64> = (0..n_features).map(|k| c + jitter(k + 7)).collect();
            d.push(&neg, false);
            d.push(&pos, true);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    #[test]
    fn default_threshold_is_half() {
        struct Half;
        impl BinaryClassifier for Half {
            fn predict_proba_one(&self, _: &[f64]) -> f64 {
                0.5
            }
            fn name(&self) -> &'static str {
                "Half"
            }
        }
        assert!(Half.predict_one(&[0.0]));
    }

    #[test]
    fn evaluate_matches_manual_tally() {
        let d = blobs(20, 2, 3.0);
        let stub = FirstFeatureStub { threshold: 0.0 };
        let m = stub.evaluate(&d);
        assert_eq!(m.total(), 40);
        assert_eq!(m.accuracy(), 1.0, "blobs at ±3 split at 0");
    }

    #[test]
    fn boxed_classifier_delegates() {
        let b: Box<dyn BinaryClassifier> = Box::new(FirstFeatureStub { threshold: 0.0 });
        assert_eq!(b.name(), "Stub");
        assert!(b.predict_one(&[1.0, 0.0]));
        assert!(!b.predict_one(&[-1.0, 0.0]));
    }

    #[test]
    fn predict_returns_row_per_sample() {
        let d = blobs(5, 3, 2.0);
        let preds = FirstFeatureStub { threshold: 0.0 }.predict(&d);
        assert_eq!(preds.len(), d.len());
    }

    #[test]
    fn default_batch_matches_one_at_a_time() {
        let d = blobs(10, 3, 2.0);
        let stub = FirstFeatureStub { threshold: 0.0 };
        let mut out = vec![0.0; d.len()];
        stub.predict_proba_batch(d.raw(), d.n_features(), &mut out);
        for (i, &p) in out.iter().enumerate() {
            assert_eq!(p, stub.predict_proba_one(d.row(i)));
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let stub = FirstFeatureStub { threshold: 0.0 };
        let mut out: Vec<f64> = Vec::new();
        stub.predict_proba_batch(&[], 3, &mut out);
        stub.predict_proba_batch(&[], 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch shape mismatch")]
    fn misshapen_batch_rejected() {
        let stub = FirstFeatureStub { threshold: 0.0 };
        let mut out = vec![0.0; 2];
        stub.predict_proba_batch(&[1.0, 2.0, 3.0], 2, &mut out);
    }
}
