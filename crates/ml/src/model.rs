//! The classifier interface shared by every model and the ensemble.

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;

/// A trained binary classifier. "Positive" (`true`) = attack flow.
pub trait BinaryClassifier: Send + Sync {
    /// Probability-like score in [0, 1] for one feature vector.
    fn predict_proba_one(&self, x: &[f64]) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn predict_one(&self, x: &[f64]) -> bool {
        self.predict_proba_one(x) >= 0.5
    }

    /// Model family name for report tables.
    fn name(&self) -> &'static str;

    /// Predict a whole dataset.
    fn predict(&self, data: &Dataset) -> Vec<bool> {
        (0..data.len())
            .map(|i| self.predict_one(data.row(i)))
            .collect()
    }

    /// Evaluate against a labeled dataset.
    fn evaluate(&self, data: &Dataset) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        for (row, label) in data.rows() {
            m.record(label, self.predict_one(row));
        }
        m
    }
}

impl<T: BinaryClassifier + ?Sized> BinaryClassifier for Box<T> {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        (**self).predict_proba_one(x)
    }

    fn predict_one(&self, x: &[f64]) -> bool {
        (**self).predict_one(x)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Threshold on the first feature — a handy stub.
    pub struct FirstFeatureStub {
        pub threshold: f64,
    }

    impl BinaryClassifier for FirstFeatureStub {
        fn predict_proba_one(&self, x: &[f64]) -> f64 {
            if x[0] > self.threshold {
                1.0
            } else {
                0.0
            }
        }

        fn name(&self) -> &'static str {
            "Stub"
        }
    }

    /// A linearly separable two-blob dataset: negatives around `-c`,
    /// positives around `+c` on every axis, with deterministic jitter.
    pub fn blobs(n_per_class: usize, n_features: usize, c: f64) -> Dataset {
        let mut d = Dataset::new(n_features);
        for i in 0..n_per_class {
            let jitter = |k: usize| ((i * 31 + k * 17) % 100) as f64 / 100.0 - 0.5;
            let neg: Vec<f64> = (0..n_features).map(|k| -c + jitter(k)).collect();
            let pos: Vec<f64> = (0..n_features).map(|k| c + jitter(k + 7)).collect();
            d.push(&neg, false);
            d.push(&pos, true);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    #[test]
    fn default_threshold_is_half() {
        struct Half;
        impl BinaryClassifier for Half {
            fn predict_proba_one(&self, _: &[f64]) -> f64 {
                0.5
            }
            fn name(&self) -> &'static str {
                "Half"
            }
        }
        assert!(Half.predict_one(&[0.0]));
    }

    #[test]
    fn evaluate_matches_manual_tally() {
        let d = blobs(20, 2, 3.0);
        let stub = FirstFeatureStub { threshold: 0.0 };
        let m = stub.evaluate(&d);
        assert_eq!(m.total(), 40);
        assert_eq!(m.accuracy(), 1.0, "blobs at ±3 split at 0");
    }

    #[test]
    fn boxed_classifier_delegates() {
        let b: Box<dyn BinaryClassifier> = Box::new(FirstFeatureStub { threshold: 0.0 });
        assert_eq!(b.name(), "Stub");
        assert!(b.predict_one(&[1.0, 0.0]));
        assert!(!b.predict_one(&[-1.0, 0.0]));
    }

    #[test]
    fn predict_returns_row_per_sample() {
        let d = blobs(5, 3, 2.0);
        let preds = FirstFeatureStub { threshold: 0.0 }.predict(&d);
        assert_eq!(preds.len(), d.len());
    }
}
