//! Gradient-boosted trees for binary classification.
//!
//! The paper is ambiguous about its third testbed model: §IV-C.3 names
//! Gaussian Naive Bayes, but the Table VI procedure says the ensemble
//! combines "the MLP, RF, and **GB** models". We implement both so the
//! ambiguity can be tested instead of argued about (see the
//! `repro_ablations` ensemble study).
//!
//! This is classic logit-loss gradient boosting: regression trees fit to
//! the negative gradient (residuals) of the log-loss, shrunk by a
//! learning rate, summed into a logit score. Split search reuses the
//! histogram strategy of [`crate::tree`] but minimizes squared error on
//! residuals instead of Gini.

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtConfig {
    pub n_rounds: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Candidate thresholds per feature per node.
    pub max_candidates: usize,
    /// Row subsampling per round (stochastic gradient boosting).
    pub subsample: f64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 50,
            learning_rate: 0.2,
            max_depth: 4,
            min_samples_leaf: 5,
            max_candidates: 32,
            subsample: 0.8,
        }
    }
}

impl GbtConfig {
    /// A lighter model for fast experiments.
    pub fn fast() -> Self {
        Self {
            n_rounds: 25,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum RNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        left: u32,
    },
}

/// A regression tree over residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RegressionTree {
    nodes: Vec<RNode>,
}

impl RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                RNode::Leaf { value } => return value,
                RNode::Split {
                    feature,
                    threshold,
                    left,
                } => {
                    i = if x[feature as usize] <= threshold {
                        left as usize
                    } else {
                        left as usize + 1
                    };
                }
            }
        }
    }

    /// Walk four rows down the tree in lockstep. Lanes that reach a
    /// leaf idle there until the deepest lane finishes; the four chase
    /// chains stay independent so their node loads overlap.
    fn predict4(&self, x: [&[f64]; 4]) -> [f64; 4] {
        let mut i = [0usize; 4];
        let mut p = [0.0f64; 4];
        loop {
            let mut all_leaves = true;
            for l in 0..4 {
                match self.nodes[i[l]] {
                    RNode::Leaf { value } => p[l] = value,
                    RNode::Split {
                        feature,
                        threshold,
                        left,
                    } => {
                        all_leaves = false;
                        i[l] = if x[l][feature as usize] <= threshold {
                            left as usize
                        } else {
                            left as usize + 1
                        };
                    }
                }
            }
            if all_leaves {
                return p;
            }
        }
    }

    /// Fit to `targets` over the selected rows.
    fn fit(
        data: &Dataset,
        targets: &[f64],
        indices: &mut [usize],
        cfg: &GbtConfig,
        rng: &mut SmallRng,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.build(data, targets, indices, 0, cfg, rng);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        indices: &mut [usize],
        depth: usize,
        cfg: &GbtConfig,
        rng: &mut SmallRng,
    ) -> u32 {
        let n = indices.len();
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / n as f64;

        if depth < cfg.max_depth && n >= 2 * cfg.min_samples_leaf {
            if let Some((feature, threshold)) = self.best_split(data, targets, indices, cfg, rng) {
                let mid = partition(data, indices, feature, threshold);
                if mid >= cfg.min_samples_leaf && n - mid >= cfg.min_samples_leaf {
                    let slot = self.nodes.len() as u32;
                    self.nodes.push(RNode::Leaf { value: mean }); // placeholder
                    let (li, ri) = indices.split_at_mut(mid);
                    let left_slot = self.nodes.len() as u32;
                    self.nodes.push(RNode::Leaf { value: 0.0 });
                    self.nodes.push(RNode::Leaf { value: 0.0 });
                    let bl = self.build(data, targets, li, depth + 1, cfg, rng);
                    self.nodes.swap(left_slot as usize, bl as usize);
                    let br = self.build(data, targets, ri, depth + 1, cfg, rng);
                    self.nodes.swap(left_slot as usize + 1, br as usize);
                    self.nodes[slot as usize] = RNode::Split {
                        feature: feature as u32,
                        threshold,
                        left: left_slot,
                    };
                    return slot;
                }
            }
        }
        let slot = self.nodes.len() as u32;
        self.nodes.push(RNode::Leaf { value: mean });
        slot
    }

    /// Variance-reduction split over histogram candidates.
    fn best_split(
        &self,
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
        cfg: &GbtConfig,
        rng: &mut SmallRng,
    ) -> Option<(usize, f64)> {
        let n = indices.len();
        let d = data.n_features();
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();

        let sample_n = 128.min(n);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, thr, gain)
        let mut values: Vec<f64> = Vec::with_capacity(sample_n);
        let mut bins: Vec<(usize, f64)> = Vec::new(); // (count, target sum)

        for f in 0..d {
            values.clear();
            for _ in 0..sample_n {
                let i = indices[rng.random_range(0..n)];
                values.push(data.row(i)[f]);
            }
            values.sort_by(f64::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let step = ((values.len() - 1) as f64 / cfg.max_candidates as f64).max(1.0);
            let mut thresholds: Vec<f64> = Vec::new();
            let mut k = 0.0;
            while (k as usize) < values.len() - 1 {
                let i = k as usize;
                thresholds.push((values[i] + values[i + 1]) / 2.0);
                k += step;
            }
            thresholds.dedup();

            bins.clear();
            bins.resize(thresholds.len() + 1, (0, 0.0));
            for &i in indices {
                let v = data.row(i)[f];
                let b = thresholds.partition_point(|&t| v > t);
                let e = &mut bins[b];
                e.0 += 1;
                e.1 += targets[i];
            }

            let mut left_n = 0usize;
            let mut left_sum = 0.0f64;
            for (b, &(cnt, sum)) in bins.iter().enumerate().take(thresholds.len()) {
                left_n += cnt;
                left_sum += sum;
                let right_n = n - left_n;
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                // Variance reduction ∝ sum²/n improvements.
                let gain = left_sum * left_sum / left_n as f64
                    + right_sum * right_sum / right_n as f64
                    - total_sum * total_sum / n as f64;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((f, thresholds[b], gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn partition(data: &Dataset, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = indices.len();
    while lo < hi {
        if data.row(indices[lo])[feature] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    lo
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The boosted model: base score plus shrunk tree outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoost {
    base_score: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl GradientBoost {
    pub fn fit(data: &Dataset, cfg: &GbtConfig, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot boost on an empty dataset");
        let n = data.len();
        let (pos, _) = data.class_counts();
        // Base score: log-odds of the positive class, clamped away from
        // degeneracy for single-class data.
        let p = (pos as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p / (1.0 - p)).ln();

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut scores = vec![base_score; n];
        let mut residuals = vec![0.0f64; n];
        let mut trees = Vec::with_capacity(cfg.n_rounds);

        for _ in 0..cfg.n_rounds {
            // Negative gradient of log-loss: y − σ(score).
            for i in 0..n {
                let y = f64::from(u8::from(data.label(i)));
                residuals[i] = y - sigmoid(scores[i]);
            }
            // Stochastic row subsample.
            let mut indices: Vec<usize> = (0..n)
                .filter(|_| cfg.subsample >= 1.0 || rng.random::<f64>() < cfg.subsample)
                .collect();
            if indices.len() < 2 * cfg.min_samples_leaf {
                indices = (0..n).collect();
            }
            let tree = RegressionTree::fit(data, &residuals, &mut indices, cfg, &mut rng);
            for (i, score) in scores.iter_mut().enumerate() {
                *score += cfg.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        Self {
            base_score,
            trees,
            learning_rate: cfg.learning_rate,
        }
    }

    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Raw logit score.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let mut s = self.base_score;
        for t in &self.trees {
            s += self.learning_rate * t.predict(x);
        }
        s
    }

    /// Raw logit scores for a contiguous row-major batch. Four rows
    /// walk each round's tree in lockstep so the pointer-chase chains
    /// overlap; accumulation into each row's score happens in round
    /// order — the same addition sequence as
    /// [`GradientBoost::decision_function`], so results are
    /// bit-identical.
    pub fn decision_function_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        let mut rows4 = rows.chunks_exact(4 * n_features);
        let mut outs4 = out.chunks_exact_mut(4);
        for (quad, o4) in rows4.by_ref().zip(outs4.by_ref()) {
            let (x0, rest) = quad.split_at(n_features);
            let (x1, rest) = rest.split_at(n_features);
            let (x2, x3) = rest.split_at(n_features);
            let mut acc = [self.base_score; 4];
            for t in &self.trees {
                let p = t.predict4([x0, x1, x2, x3]);
                for (a, &pv) in acc.iter_mut().zip(&p) {
                    *a += self.learning_rate * pv;
                }
            }
            o4.copy_from_slice(&acc);
        }
        for (row, o) in rows4
            .remainder()
            .chunks_exact(n_features)
            .zip(outs4.into_remainder())
        {
            *o = self.decision_function(row);
        }
    }
}

impl BinaryClassifier for GradientBoost {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        sigmoid(self.decision_function(x))
    }

    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        self.decision_function_batch(rows, n_features, out);
        for o in out.iter_mut() {
            *o = sigmoid(*o);
        }
    }

    fn name(&self) -> &'static str {
        "GB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::blobs;

    #[test]
    fn learns_separable_blobs() {
        let train = blobs(200, 4, 2.0);
        let test = blobs(50, 4, 2.0);
        let gb = GradientBoost::fit(&train, &GbtConfig::fast(), 1);
        assert!(gb.evaluate(&test).accuracy() > 0.99);
    }

    #[test]
    fn learns_xor_nonlinearity() {
        let mut d = Dataset::new(2);
        for i in 0..400 {
            let a = i % 2 == 0;
            let b = (i / 2) % 2 == 0;
            let j = ((i * 37) % 100) as f64 / 500.0;
            d.push(
                &[
                    if a { 1.0 } else { -1.0 } + j,
                    if b { 1.0 } else { -1.0 } - j,
                ],
                a ^ b,
            );
        }
        let gb = GradientBoost::fit(&d, &GbtConfig::default(), 2);
        assert!(
            gb.evaluate(&d).accuracy() > 0.95,
            "XOR needs depth ≥ 2 trees"
        );
    }

    #[test]
    fn more_rounds_fit_tighter() {
        let d = blobs(150, 3, 0.6); // overlapping
        let few = GradientBoost::fit(
            &d,
            &GbtConfig {
                n_rounds: 2,
                ..GbtConfig::default()
            },
            3,
        )
        .evaluate(&d)
        .accuracy();
        let many = GradientBoost::fit(
            &d,
            &GbtConfig {
                n_rounds: 60,
                ..GbtConfig::default()
            },
            3,
        )
        .evaluate(&d)
        .accuracy();
        assert!(
            many >= few,
            "boosting must not get worse on train: {few} → {many}"
        );
    }

    #[test]
    fn base_score_matches_prior() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i as f64], i < 25); // 25% positive
        }
        let gb = GradientBoost::fit(
            &d,
            &GbtConfig {
                n_rounds: 0,
                ..Default::default()
            },
            1,
        );
        assert_eq!(gb.n_rounds(), 0);
        let p = gb.predict_proba_one(&[50.0]);
        assert!(
            (p - 0.25).abs() < 1e-9,
            "with no trees, predict the prior, got {p}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = blobs(80, 3, 1.0);
        let a = GradientBoost::fit(&d, &GbtConfig::fast(), 5);
        let b = GradientBoost::fit(&d, &GbtConfig::fast(), 5);
        let x = [0.1, -0.7, 0.4];
        assert_eq!(a.decision_function(&x), b.decision_function(&x));
    }

    #[test]
    fn proba_bounded() {
        let d = blobs(60, 2, 2.0);
        let gb = GradientBoost::fit(&d, &GbtConfig::fast(), 7);
        for x in [[100.0, 100.0], [-100.0, -100.0], [0.0, 0.0]] {
            let p = gb.predict_proba_one(&x);
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let d = blobs(60, 3, 1.5);
        let gb = GradientBoost::fit(&d, &GbtConfig::fast(), 9);
        let json = serde_json::to_string(&gb).unwrap();
        let back: GradientBoost = serde_json::from_str(&json).unwrap();
        for (row, _) in d.rows() {
            assert_eq!(gb.predict_one(row), back.predict_one(row));
        }
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], true);
        }
        let gb = GradientBoost::fit(&d, &GbtConfig::fast(), 1);
        assert!(gb.predict_one(&[5.0]));
    }
}
