//! CART decision trees and the random forest built on them.
//!
//! Split search is histogram-based: candidate thresholds are quantiles of
//! a value sample at each node, and all rows are binned in one pass per
//! feature. That bounds split cost at O(n log c) per feature regardless
//! of node size — the classic trick for training on millions of
//! telemetry rows without per-node full sorts.
//!
//! Trees are independent, so [`RandomForest::fit`] trains them in
//! parallel with rayon (each tree gets a seed derived from the forest
//! seed, so results are deterministic regardless of thread scheduling).

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds per feature per node.
    pub max_candidates: usize,
    /// Features considered per split; `None` = all (single tree default).
    pub mtry: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_candidates: 32,
            mtry: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        /// Children are at `left` and `left + 1` in the arena.
        left: u32,
    },
}

/// A trained CART tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Total impurity decrease contributed by each feature.
    importances: Vec<f64>,
}

#[inline]
fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p) // 1 - p² - (1-p)² simplified
}

impl DecisionTree {
    /// Fit on the rows of `data` selected by `indices`.
    pub fn fit_indices(data: &Dataset, indices: &[usize], config: &TreeConfig, seed: u64) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
            importances: vec![0.0; data.n_features()],
        };
        let mut scratch = indices.to_vec();
        tree.build(data, &mut scratch, 0, config, &mut rng);
        tree
    }

    /// Fit on all rows.
    pub fn fit(data: &Dataset, config: &TreeConfig, seed: u64) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_indices(data, &indices, config, seed)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, .. } => {
                    1 + walk(nodes, left as usize).max(walk(nodes, left as usize + 1))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Raw (unnormalized) impurity-decrease importances.
    pub fn raw_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Build the subtree over `indices`, returning its arena slot.
    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut SmallRng,
    ) -> u32 {
        let n = indices.len();
        let pos = indices.iter().filter(|&&i| data.label(i)).count();
        let proba = pos as f64 / n as f64;

        let make_leaf =
            pos == 0 || pos == n || depth >= config.max_depth || n < config.min_samples_split;
        if !make_leaf {
            if let Some((feature, threshold, gain)) = self.best_split(data, indices, config, rng) {
                // Partition in place.
                let mid = partition(data, indices, feature, threshold);
                if mid >= config.min_samples_leaf
                    && n - mid >= config.min_samples_leaf
                    && gain > 0.0
                {
                    self.importances[feature] += gain;
                    let slot = self.nodes.len() as u32;
                    self.nodes.push(Node::Leaf { proba }); // placeholder
                    let (left_idx, right_idx) = indices.split_at_mut(mid);
                    // Children must be adjacent: reserve both by building
                    // left first, then right, then fixing the pointer.
                    let left = self.build_pair(data, left_idx, right_idx, depth, config, rng);
                    self.nodes[slot as usize] = Node::Split {
                        feature: feature as u32,
                        threshold,
                        left,
                    };
                    return slot;
                }
            }
        }
        let slot = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { proba });
        slot
    }

    /// Build both children, guaranteeing adjacency (left at k, right at
    /// k+1) by pre-allocating placeholder slots.
    fn build_pair(
        &mut self,
        data: &Dataset,
        left_idx: &mut [usize],
        right_idx: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut SmallRng,
    ) -> u32 {
        let left_slot = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { proba: 0.0 }); // left placeholder
        self.nodes.push(Node::Leaf { proba: 0.0 }); // right placeholder
        let built_left = self.build(data, left_idx, depth + 1, config, rng);
        self.nodes.swap(left_slot as usize, built_left as usize);
        self.relocate_children(left_slot, built_left);
        let built_right = self.build(data, right_idx, depth + 1, config, rng);
        self.nodes
            .swap(left_slot as usize + 1, built_right as usize);
        self.relocate_children(left_slot + 1, built_right);
        left_slot
    }

    /// After swapping a subtree root into its reserved slot, the node that
    /// used to live in the reserved slot (a placeholder) sits where the
    /// root was built; nothing points at it, so only the moved root's
    /// children pointers stay valid (children were built after the root
    /// slot and never moved). No fix-up needed beyond the swap — this
    /// helper documents that invariant and asserts it in debug builds.
    fn relocate_children(&self, _slot: u32, _from: u32) {
        debug_assert!(_from as usize >= _slot as usize);
    }

    /// Find the best (feature, threshold) by Gini gain over histogram
    /// candidates. Returns `None` if no split improves purity.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut SmallRng,
    ) -> Option<(usize, f64, f64)> {
        let n = indices.len();
        let total_pos = indices.iter().filter(|&&i| data.label(i)).count();
        let parent_gini = gini(total_pos, n);

        // Feature subset (mtry).
        let d = data.n_features();
        let mut features: Vec<usize> = (0..d).collect();
        let take = config.mtry.unwrap_or(d).clamp(1, d);
        if take < d {
            features.shuffle(rng);
            features.truncate(take);
        }

        // Sample values for candidate thresholds.
        let sample_n = 256.min(n);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut values: Vec<f64> = Vec::with_capacity(sample_n);
        let mut bins: Vec<(usize, usize)> = Vec::new(); // (count, pos) per bin

        for &f in &features {
            values.clear();
            for _ in 0..sample_n {
                let i = indices[rng.random_range(0..n)];
                values.push(data.row(i)[f]);
            }
            values.sort_by(f64::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue; // constant feature at this node
            }
            // Candidate thresholds: midpoints of up to max_candidates
            // evenly spaced quantiles.
            let step = ((values.len() - 1) as f64 / config.max_candidates as f64).max(1.0);
            let mut thresholds: Vec<f64> = Vec::with_capacity(config.max_candidates);
            let mut k = 0.0;
            while (k as usize) < values.len() - 1 {
                let i = k as usize;
                thresholds.push((values[i] + values[i + 1]) / 2.0);
                k += step;
            }
            thresholds.dedup();

            // One pass: bin every row by threshold index.
            bins.clear();
            bins.resize(thresholds.len() + 1, (0, 0));
            for &i in indices {
                let v = data.row(i)[f];
                let bin = thresholds.partition_point(|&t| v > t);
                let e = &mut bins[bin];
                e.0 += 1;
                e.1 += usize::from(data.label(i));
            }

            // Prefix scan: split after bin b means left = bins[..=b].
            let mut left_n = 0usize;
            let mut left_pos = 0usize;
            for (b, &(cnt, pos)) in bins.iter().enumerate().take(thresholds.len()) {
                left_n += cnt;
                left_pos += pos;
                let right_n = n - left_n;
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let w_gini = (left_n as f64 * gini(left_pos, left_n)
                    + right_n as f64 * gini(right_pos, right_n))
                    / n as f64;
                let gain = (parent_gini - w_gini) * n as f64;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    // bins are ordered low→high values; threshold index b.
                    best = Some((f, thresholds[b], gain));
                }
            }
        }
        best
    }

    #[inline]
    fn leaf_proba(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                } => {
                    i = if x[feature as usize] <= threshold {
                        left as usize
                    } else {
                        left as usize + 1
                    };
                }
            }
        }
    }

    /// Walk four rows down the tree in lockstep. Lanes that reach a
    /// leaf idle there (re-reading the cached leaf node) until the
    /// deepest lane finishes; the four chase chains stay independent so
    /// their node loads overlap.
    fn leaf_proba4(&self, x: [&[f64]; 4]) -> [f64; 4] {
        let mut i = [0usize; 4];
        let mut p = [0.0f64; 4];
        loop {
            let mut all_leaves = true;
            for l in 0..4 {
                match self.nodes[i[l]] {
                    Node::Leaf { proba } => p[l] = proba,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                    } => {
                        all_leaves = false;
                        i[l] = if x[l][feature as usize] <= threshold {
                            left as usize
                        } else {
                            left as usize + 1
                        };
                    }
                }
            }
            if all_leaves {
                return p;
            }
        }
    }
}

/// In-place partition of `indices`: rows with `x[feature] <= threshold`
/// first. Returns the boundary.
fn partition(data: &Dataset, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = indices.len();
    while lo < hi {
        if data.row(indices[lo])[feature] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    lo
}

impl BinaryClassifier for DecisionTree {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        self.leaf_proba(x)
    }

    /// Route every row of the batch through the (cache-hot) node arena.
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        for (row, o) in rows.chunks_exact(n_features).zip(out.iter_mut()) {
            *o = self.leaf_proba(row);
        }
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

/// Forest hyperparameters. Defaults follow scikit-learn's spirit:
/// 100 trees, sqrt(d) features per split, bootstrap the full sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    pub n_trees: usize,
    pub tree: TreeConfig,
    pub bootstrap: bool,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 16,
                ..Default::default()
            },
            bootstrap: true,
        }
    }
}

impl RandomForestConfig {
    /// A lighter forest for fast experiments.
    pub fn fast() -> Self {
        Self {
            n_trees: 25,
            ..Default::default()
        }
    }
}

/// A bagged ensemble of CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    pub fn fit(data: &Dataset, config: &RandomForestConfig, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        let d = data.n_features();
        let mtry = config
            .tree
            .mtry
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize);
        let tree_cfg = TreeConfig {
            mtry: Some(mtry),
            ..config.tree
        };

        let trees: Vec<DecisionTree> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                let tree_seed = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(t as u64);
                let mut rng = SmallRng::seed_from_u64(tree_seed);
                if config.bootstrap {
                    let idx = data.bootstrap_indices(data.len(), &mut rng);
                    DecisionTree::fit_indices(data, &idx, &tree_cfg, tree_seed ^ 0xabcd)
                } else {
                    DecisionTree::fit(data, &tree_cfg, tree_seed ^ 0xabcd)
                }
            })
            .collect();
        Self {
            trees,
            n_features: d,
        }
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean-decrease-in-impurity importances, normalized to sum to 1.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for t in &self.trees {
            for (acc, &v) in total.iter_mut().zip(t.raw_importances()) {
                *acc += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

impl BinaryClassifier for RandomForest {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.leaf_proba(x)).sum();
        s / self.trees.len() as f64
    }

    /// Columnar traversal: each tree walks the whole batch while its node
    /// arena stays cache-hot, accumulating straight into `out` — no
    /// per-call allocation. Trees are folded **in tree order**, which
    /// reproduces the per-row summation order exactly — batched
    /// probabilities are bit-identical to
    /// [`RandomForest::predict_proba_one`].
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        // Four rows walk each tree in lockstep: the four pointer-chase
        // chains are independent, so their node loads overlap instead
        // of serializing. Trees stay innermost — the paper-sized forest
        // (25 shallow trees) fits in cache whole, and a tree-major
        // sweep measured slower than keeping each row quad hot.
        let n = self.trees.len() as f64;
        let mut rows4 = rows.chunks_exact(4 * n_features);
        let mut outs4 = out.chunks_exact_mut(4);
        for (quad, o4) in rows4.by_ref().zip(outs4.by_ref()) {
            let (x0, rest) = quad.split_at(n_features);
            let (x1, rest) = rest.split_at(n_features);
            let (x2, x3) = rest.split_at(n_features);
            let mut acc = [0.0f64; 4];
            for t in &self.trees {
                let p = t.leaf_proba4([x0, x1, x2, x3]);
                for (a, &pv) in acc.iter_mut().zip(&p) {
                    *a += pv;
                }
            }
            for (o, &a) in o4.iter_mut().zip(&acc) {
                *o = a / n;
            }
        }
        for (row, o) in rows4
            .remainder()
            .chunks_exact(n_features)
            .zip(outs4.into_remainder())
        {
            *o = self.predict_proba_one(row);
        }
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::blobs;

    #[test]
    fn tree_learns_separable_blobs() {
        let d = blobs(100, 4, 3.0);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), 1);
        assert_eq!(tree.evaluate(&d).accuracy(), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[i as f64, 0.0], true);
        }
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), 1);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba_one(&[5.0, 0.0]), 1.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let d = blobs(200, 3, 0.4); // overlapping blobs force deep trees
        let tree = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 3,
                ..Default::default()
            },
            1,
        );
        assert!(tree.depth() <= 4, "depth {}", tree.depth());
    }

    #[test]
    fn min_samples_split_caps_growth() {
        let d = blobs(100, 2, 0.3);
        let big = DecisionTree::fit(&d, &TreeConfig::default(), 1).node_count();
        let small = DecisionTree::fit(
            &d,
            &TreeConfig {
                min_samples_split: 100,
                ..Default::default()
            },
            1,
        )
        .node_count();
        assert!(small < big);
    }

    #[test]
    fn importances_identify_informative_feature() {
        // Only feature 0 is informative; 1 and 2 are constant-ish noise.
        let mut d = Dataset::new(3);
        for i in 0..400 {
            let x0 = if i % 2 == 0 { -1.0 } else { 1.0 };
            let noise = ((i * 7919) % 100) as f64 / 1000.0;
            d.push(&[x0 + noise / 10.0, noise, 0.5], i % 2 == 1);
        }
        let forest = RandomForest::fit(&d, &RandomForestConfig::fast(), 3);
        let imp = forest.feature_importances();
        assert!(imp[0] > 0.9, "importances {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forest_beats_or_matches_single_tree_on_noisy_data() {
        let train = blobs(300, 5, 0.8);
        let test = blobs(100, 5, 0.8);
        let tree = DecisionTree::fit(
            &train,
            &TreeConfig {
                max_depth: 4,
                ..Default::default()
            },
            5,
        );
        let forest = RandomForest::fit(
            &train,
            &RandomForestConfig {
                n_trees: 30,
                ..RandomForestConfig::fast()
            },
            5,
        );
        let t_acc = tree.evaluate(&test).accuracy();
        let f_acc = forest.evaluate(&test).accuracy();
        assert!(f_acc >= t_acc - 0.02, "forest {f_acc} vs tree {t_acc}");
        assert!(f_acc > 0.9);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let d = blobs(50, 3, 1.0);
        let a = RandomForest::fit(&d, &RandomForestConfig::fast(), 9);
        let b = RandomForest::fit(&d, &RandomForestConfig::fast(), 9);
        let x = [0.3, -0.2, 0.9];
        assert_eq!(a.predict_proba_one(&x), b.predict_proba_one(&x));
    }

    #[test]
    fn proba_is_bounded() {
        let d = blobs(50, 2, 2.0);
        let forest = RandomForest::fit(&d, &RandomForestConfig::fast(), 2);
        for (row, _) in d.rows() {
            let p = forest.predict_proba_one(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn partition_splits_correctly() {
        let mut d = Dataset::new(1);
        for v in [5.0, 1.0, 3.0, 8.0, 2.0] {
            d.push(&[v], false);
        }
        let mut idx = vec![0, 1, 2, 3, 4];
        let mid = partition(&d, &mut idx, 0, 3.0);
        assert_eq!(mid, 3);
        for &i in &idx[..mid] {
            assert!(d.row(i)[0] <= 3.0);
        }
        for &i in &idx[mid..] {
            assert!(d.row(i)[0] > 3.0);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let d = blobs(40, 3, 2.0);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), 4);
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for (row, _) in d.rows() {
            assert_eq!(tree.predict_one(row), back.predict_one(row));
        }
    }
}
