//! Typed errors for the ml crate.
//!
//! Hot-path kernels must not panic (amlint rule R1): APIs whose failure
//! is a caller-visible condition — not a programming error — surface it
//! through [`MlError`] instead.

use std::error::Error;
use std::fmt;

/// Recoverable ml-layer failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlError {
    /// A ROC curve with no operating points was queried.
    EmptyCurve,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyCurve => write!(f, "ROC curve has no operating points"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            MlError::EmptyCurve.to_string(),
            "ROC curve has no operating points"
        );
    }
}
