//! ROC analysis: threshold sweeps and AUC.
//!
//! The paper reports threshold-at-0.5 metrics only; ROC/AUC is the
//! natural extension when comparing telemetry sources whose class
//! balance differs by orders of magnitude (INT sees every packet, sFlow
//! one in 4,096).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::model::BinaryClassifier;
use serde::{Deserialize, Serialize};

/// One operating point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    pub threshold: f64,
    pub true_positive_rate: f64,
    pub false_positive_rate: f64,
}

/// A full ROC curve with its AUC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Points ordered by descending threshold, (0,0) → (1,1).
    pub points: Vec<RocPoint>,
    pub auc: f64,
}

impl RocCurve {
    /// Build from (score, truth) pairs. Scores need not be probabilities
    /// — any monotone ranking works.
    pub fn from_scores(scored: &[(f64, bool)]) -> Self {
        assert!(!scored.is_empty(), "need at least one scored sample");
        let pos = scored.iter().filter(|(_, y)| *y).count() as f64;
        let neg = scored.len() as f64 - pos;

        let mut sorted: Vec<(f64, bool)> = scored.to_vec();
        sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            true_positive_rate: 0.0,
            false_positive_rate: 0.0,
        }];
        let (mut tp, mut fp) = (0.0f64, 0.0f64);
        let mut i = 0;
        while i < sorted.len() {
            // Consume ties together so the curve is threshold-consistent.
            let threshold = sorted[i].0;
            while i < sorted.len() && sorted[i].0 == threshold {
                if sorted[i].1 {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                true_positive_rate: if pos > 0.0 { tp / pos } else { 0.0 },
                false_positive_rate: if neg > 0.0 { fp / neg } else { 0.0 },
            });
        }

        // Trapezoidal AUC.
        let mut auc = 0.0;
        for w in points.windows(2) {
            let dx = w[1].false_positive_rate - w[0].false_positive_rate;
            auc += dx * (w[1].true_positive_rate + w[0].true_positive_rate) / 2.0;
        }
        Self { points, auc }
    }

    /// Score a model over a labeled dataset (batched) and build the
    /// curve.
    pub fn from_model(model: &dyn BinaryClassifier, data: &Dataset) -> Self {
        let mut proba = vec![0.0; data.len()];
        model.predict_proba_batch(data.raw(), data.n_features(), &mut proba);
        let scored: Vec<(f64, bool)> = proba
            .into_iter()
            .zip(data.labels().iter().copied())
            .collect();
        Self::from_scores(&scored)
    }

    /// The operating point whose threshold is closest to `t`, or
    /// [`MlError::EmptyCurve`] for a curve with no points (deserialized
    /// or hand-built — [`RocCurve::from_scores`] always yields at least
    /// the (0,0) anchor).
    pub fn at_threshold(&self, t: f64) -> Result<RocPoint, MlError> {
        self.points
            .iter()
            .min_by(|a, b| (a.threshold - t).abs().total_cmp(&(b.threshold - t).abs()))
            .copied()
            .ok_or(MlError::EmptyCurve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scored = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc - 1.0).abs() < 1e-12);
        assert_eq!(roc.points.first().unwrap().true_positive_rate, 0.0);
        assert_eq!(roc.points.last().unwrap().true_positive_rate, 1.0);
        assert_eq!(roc.points.last().unwrap().false_positive_rate, 1.0);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scored = [(0.9, false), (0.8, false), (0.2, true), (0.1, true)];
        let roc = RocCurve::from_scores(&scored);
        assert!(roc.auc.abs() < 1e-12);
    }

    #[test]
    fn random_constant_scores_give_half() {
        // All scores identical: one diagonal step → AUC 0.5.
        let scored: Vec<(f64, bool)> = (0..100).map(|i| (0.5, i % 2 == 0)).collect();
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_partial_auc() {
        // Scores: pos at 0.9 and 0.4; neg at 0.6 and 0.1.
        // Ranking: 0.9(+) 0.6(−) 0.4(+) 0.1(−) → AUC = 3/4.
        let scored = [(0.9, true), (0.6, false), (0.4, true), (0.1, false)];
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let scored: Vec<(f64, bool)> = (0..200)
            .map(|i| ((i % 17) as f64 / 17.0, (i % 3) == 0))
            .collect();
        let roc = RocCurve::from_scores(&scored);
        for w in roc.points.windows(2) {
            assert!(w[1].true_positive_rate >= w[0].true_positive_rate);
            assert!(w[1].false_positive_rate >= w[0].false_positive_rate);
        }
        assert!((0.0..=1.0).contains(&roc.auc));
    }

    #[test]
    fn at_threshold_picks_nearest() {
        let scored = [(0.9, true), (0.5, false), (0.1, true)];
        let roc = RocCurve::from_scores(&scored);
        let p = roc.at_threshold(0.51).unwrap();
        assert_eq!(p.threshold, 0.5);
        let empty = RocCurve {
            points: Vec::new(),
            auc: 0.0,
        };
        assert_eq!(empty.at_threshold(0.5), Err(MlError::EmptyCurve));
    }

    #[test]
    fn from_model_matches_manual() {
        use crate::model::test_util::{blobs, FirstFeatureStub};
        let d = blobs(30, 2, 2.0);
        let stub = FirstFeatureStub { threshold: 0.0 };
        let roc = RocCurve::from_model(&stub, &d);
        assert!(
            (roc.auc - 1.0).abs() < 1e-12,
            "separable blobs rank perfectly"
        );
    }
}
