//! Majority-vote ensembles (paper §IV-C.4: "if two or more of the
//! predictions are 1, then it is classified as an attack flow").

use crate::model::BinaryClassifier;

/// Majority vote over an odd (recommended) number of classifiers.
pub struct MajorityEnsemble {
    members: Vec<Box<dyn BinaryClassifier>>,
}

impl MajorityEnsemble {
    pub fn new(members: Vec<Box<dyn BinaryClassifier>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn member_names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Individual member votes for one input.
    pub fn votes(&self, x: &[f64]) -> Vec<bool> {
        self.members.iter().map(|m| m.predict_one(x)).collect()
    }
}

impl BinaryClassifier for MajorityEnsemble {
    /// Fraction of members voting "attack".
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        let votes = self.members.iter().filter(|m| m.predict_one(x)).count();
        votes as f64 / self.members.len() as f64
    }

    /// Member-major batching: each member scores the whole batch through
    /// its own columnar path, then integer vote counts are converted to
    /// fractions. Vote counting is exact arithmetic, so the result is
    /// bit-identical to the per-row vote fraction.
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        let mut member_proba = vec![0.0; out.len()];
        let mut counts = vec![0u32; out.len()];
        for m in &self.members {
            m.predict_proba_batch(rows, n_features, &mut member_proba);
            for (c, &p) in counts.iter_mut().zip(&member_proba) {
                *c += u32::from(crate::model::decide(p));
            }
        }
        let n = self.members.len() as f64;
        for (o, c) in out.iter_mut().zip(counts) {
            *o = f64::from(c) / n;
        }
    }

    fn name(&self) -> &'static str {
        "Ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(bool);
    impl BinaryClassifier for Fixed {
        fn predict_proba_one(&self, _: &[f64]) -> f64 {
            f64::from(u8::from(self.0))
        }
        fn name(&self) -> &'static str {
            "Fixed"
        }
    }

    fn ensemble(votes: &[bool]) -> MajorityEnsemble {
        MajorityEnsemble::new(
            votes
                .iter()
                .map(|&v| Box::new(Fixed(v)) as Box<dyn BinaryClassifier>)
                .collect(),
        )
    }

    #[test]
    fn two_of_three_is_attack() {
        assert!(ensemble(&[true, true, false]).predict_one(&[]));
        assert!(ensemble(&[true, false, true]).predict_one(&[]));
        assert!(!ensemble(&[true, false, false]).predict_one(&[]));
        assert!(!ensemble(&[false, false, false]).predict_one(&[]));
    }

    #[test]
    fn proba_is_vote_fraction() {
        let e = ensemble(&[true, true, false]);
        assert!((e.predict_proba_one(&[]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn votes_expose_members() {
        let e = ensemble(&[true, false, true]);
        assert_eq!(e.votes(&[]), vec![true, false, true]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.member_names(), vec!["Fixed", "Fixed", "Fixed"]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        MajorityEnsemble::new(vec![]);
    }

    #[test]
    fn even_split_counts_as_attack_at_half_threshold() {
        // 1-of-2 → proba 0.5 → predicted positive at the ≥0.5 threshold.
        // Use odd ensembles if this tie behavior is undesirable.
        assert!(ensemble(&[true, false]).predict_one(&[]));
    }
}
