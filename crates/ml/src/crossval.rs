//! K-fold cross-validation.
//!
//! The paper reports one 90:10 split per table. Cross-validation puts
//! error bars on those cells — essential when comparing telemetry
//! sources whose test sets differ in size by 60× (INT vs sampled sFlow).

use crate::dataset::Dataset;
use crate::metrics::BinaryMetrics;
use crate::model::BinaryClassifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvReport {
    pub folds: Vec<BinaryMetrics>,
    pub mean: BinaryMetrics,
    /// Sample standard deviation of each metric across folds.
    pub std: BinaryMetrics,
}

impl CvReport {
    fn aggregate(folds: Vec<BinaryMetrics>) -> Self {
        let n = folds.len() as f64;
        let mean_of = |f: fn(&BinaryMetrics) -> f64| folds.iter().map(f).sum::<f64>() / n;
        let mean = BinaryMetrics {
            accuracy: mean_of(|m| m.accuracy),
            recall: mean_of(|m| m.recall),
            precision: mean_of(|m| m.precision),
            f1: mean_of(|m| m.f1),
        };
        let std_of = |f: fn(&BinaryMetrics) -> f64, mu: f64| {
            if folds.len() < 2 {
                0.0
            } else {
                (folds.iter().map(|m| (f(m) - mu).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
            }
        };
        let std = BinaryMetrics {
            accuracy: std_of(|m| m.accuracy, mean.accuracy),
            recall: std_of(|m| m.recall, mean.recall),
            precision: std_of(|m| m.precision, mean.precision),
            f1: std_of(|m| m.f1, mean.f1),
        };
        Self { folds, mean, std }
    }

    /// `mean ± std` rendering for one metric, paper-table style.
    pub fn cell(
        &self,
        metric: fn(&BinaryMetrics) -> f64,
        spread: fn(&BinaryMetrics) -> f64,
    ) -> String {
        format!("{:.4} ± {:.4}", metric(&self.mean), spread(&self.std))
    }
}

/// Shuffled k-fold split: returns `k` (train, test) index pairs covering
/// every row exactly once as test.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "need at least one row per fold");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));

    (0..k)
        .map(|fold| {
            let lo = n * fold / k;
            let hi = n * (fold + 1) / k;
            let test: Vec<usize> = order[lo..hi].to_vec();
            let train: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
            (train, test)
        })
        .collect()
}

/// Run k-fold CV: `fit` trains a classifier on each fold's training
/// dataset (already materialized), and the fold's held-out rows score it.
pub fn cross_validate<M, F>(data: &Dataset, k: usize, seed: u64, mut fit: F) -> CvReport
where
    M: BinaryClassifier,
    F: FnMut(&Dataset) -> M,
{
    let folds = kfold_indices(data.len(), k, seed)
        .into_iter()
        .map(|(train_idx, test_idx)| {
            let train = data.select(&train_idx);
            let test = data.select(&test_idx);
            let model = fit(&train);
            // One columnar predict_proba_batch call per fold instead of a
            // virtual call per held-out row.
            model.evaluate(&test).metrics()
        })
        .collect();
    CvReport::aggregate(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnb::GaussianNb;
    use crate::model::test_util::blobs;

    #[test]
    fn folds_partition_every_row() {
        let folds = kfold_indices(103, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 103);
            for &i in test {
                assert!(seen.insert(i), "row {i} tested twice");
                assert!(!train.contains(&i), "row {i} leaks into training");
            }
        }
        assert_eq!(seen.len(), 103);
    }

    #[test]
    fn fold_sizes_are_balanced() {
        let folds = kfold_indices(100, 4, 2);
        for (_, test) in &folds {
            assert_eq!(test.len(), 25);
        }
        // Non-divisible case: sizes differ by at most one.
        let folds = kfold_indices(10, 3, 2);
        let sizes: Vec<usize> = folds.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn cv_on_separable_data_is_tight() {
        let data = blobs(150, 3, 2.5);
        let report = cross_validate(&data, 5, 7, GaussianNb::fit);
        assert_eq!(report.folds.len(), 5);
        assert!(report.mean.accuracy > 0.99, "mean {}", report.mean.accuracy);
        assert!(report.std.accuracy < 0.02, "std {}", report.std.accuracy);
    }

    #[test]
    fn cv_is_deterministic_per_seed() {
        let data = blobs(60, 2, 1.0);
        let a = cross_validate(&data, 3, 9, GaussianNb::fit);
        let b = cross_validate(&data, 3, 9, GaussianNb::fit);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_formats_mean_and_spread() {
        let data = blobs(60, 2, 2.0);
        let report = cross_validate(&data, 3, 5, GaussianNb::fit);
        let cell = report.cell(|m| m.accuracy, |s| s.accuracy);
        assert!(cell.contains('±'), "{cell}");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_rejected() {
        kfold_indices(10, 1, 0);
    }
}
