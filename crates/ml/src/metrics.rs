//! Binary classification metrics (paper §IV-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-by-two confusion matrix. "Positive" = attack (label 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    pub tp: u64,
    pub tn: u64,
    pub fp: u64,
    pub fn_: u64,
}

impl ConfusionMatrix {
    pub fn new() -> Self {
        Self::default()
    }

    /// Tally one (truth, prediction) pair.
    #[inline]
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Build from parallel slices.
    pub fn from_predictions(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(truth.len(), predicted.len());
        let mut m = Self::new();
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Precision = TP / (TP + FP); 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let denom = p + r;
        if denom > 0.0 {
            2.0 * p * r / denom
        } else {
            0.0
        }
    }

    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics {
            accuracy: self.accuracy(),
            recall: self.recall(),
            precision: self.precision(),
            f1: self.f1(),
        }
    }

    /// Misclassified count (paper Table VI's "Misclassified / Number of
    /// Predicted Packets").
    pub fn misclassified(&self) -> u64 {
        self.fp + self.fn_
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Render as the paper's Figs. 3/4: rows = truth, cols = prediction.
    pub fn render(&self) -> String {
        format!(
            "                 pred=Normal   pred=Attack\n\
             true=Normal  {:>12} {:>12}\n\
             true=Attack  {:>12} {:>12}\n",
            self.tn, self.fp, self.fn_, self.tp
        )
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The four headline numbers of the paper's Tables III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    pub accuracy: f64,
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
}

impl BinaryMetrics {
    /// Format as a paper-style table row.
    pub fn row(&self) -> String {
        format!(
            "{:.4}   {:.4}   {:.4}   {:.4}",
            self.accuracy, self.recall, self.precision, self.f1
        )
    }
}

impl fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accuracy={:.4} recall={:.4} precision={:.4} f1={:.4}",
            self.accuracy, self.recall, self.precision, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let truth = [true, false, true, false];
        let m = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.misclassified(), 0);
    }

    #[test]
    fn always_negative_classifier() {
        let truth = [true, true, false, false];
        let pred = [false; 4];
        let m = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), 0.0, "undefined precision reported as 0");
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn known_mixed_case() {
        // tp=2 tn=3 fp=1 fn=2 → acc 5/8, prec 2/3, rec 2/4.
        let truth = [true, true, true, true, false, false, false, false];
        let pred = [true, true, false, false, true, false, false, false];
        let m = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!((m.tp, m.tn, m.fp, m.fn_), (2, 3, 1, 2));
        assert!((m.accuracy() - 0.625).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        let f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((m.f1() - f1).abs() < 1e-12);
        assert_eq!(m.misclassified(), 3);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = ConfusionMatrix {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        let b = ConfusionMatrix {
            tp: 10,
            tn: 20,
            fp: 30,
            fn_: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ConfusionMatrix {
                tp: 11,
                tn: 22,
                fp: 33,
                fn_: 44
            }
        );
    }

    #[test]
    fn render_places_cells_like_figure() {
        let m = ConfusionMatrix {
            tp: 4,
            tn: 3,
            fp: 2,
            fn_: 1,
        };
        let s = m.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains('3') && lines[1].contains('2'));
        assert!(lines[2].contains('1') && lines[2].contains('4'));
    }

    #[test]
    fn metrics_row_formats_four_columns() {
        let m = ConfusionMatrix {
            tp: 1,
            tn: 1,
            fp: 0,
            fn_: 0,
        }
        .metrics();
        assert_eq!(m.row(), "1.0000   1.0000   1.0000   1.0000");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }
}
