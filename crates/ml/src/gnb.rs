//! Gaussian Naive Bayes.

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use serde::{Deserialize, Serialize};

/// Per-class feature Gaussians with a shared variance-smoothing floor
/// (scikit-learn's `var_smoothing` scheme: ε = 1e-9 × max feature
/// variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    prior_pos: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
}

impl GaussianNb {
    pub fn fit(data: &Dataset) -> Self {
        let d = data.n_features();
        let (pos_n, neg_n) = data.class_counts();
        assert!(pos_n > 0 && neg_n > 0, "GNB needs both classes present");

        let mut mean_pos = vec![0.0; d];
        let mut mean_neg = vec![0.0; d];
        for (row, label) in data.rows() {
            let m = if label { &mut mean_pos } else { &mut mean_neg };
            for (acc, &v) in m.iter_mut().zip(row) {
                *acc += v;
            }
        }
        for v in &mut mean_pos {
            *v /= pos_n as f64;
        }
        for v in &mut mean_neg {
            *v /= neg_n as f64;
        }

        let mut var_pos = vec![0.0; d];
        let mut var_neg = vec![0.0; d];
        for (row, label) in data.rows() {
            let (v, m) = if label {
                (&mut var_pos, &mean_pos)
            } else {
                (&mut var_neg, &mean_neg)
            };
            for ((acc, &mu), &x) in v.iter_mut().zip(m).zip(row) {
                let dlt = x - mu;
                *acc += dlt * dlt;
            }
        }
        for v in &mut var_pos {
            *v /= pos_n as f64;
        }
        for v in &mut var_neg {
            *v /= neg_n as f64;
        }

        // Smoothing floor keyed to the largest variance in the data.
        let max_var = var_pos
            .iter()
            .chain(&var_neg)
            .fold(0.0f64, |a, &b| a.max(b));
        let eps = 1e-9 * max_var.max(1e-12);
        for v in var_pos.iter_mut().chain(var_neg.iter_mut()) {
            *v = v.max(eps);
        }

        Self {
            prior_pos: pos_n as f64 / data.len() as f64,
            mean_pos,
            var_pos,
            mean_neg,
            var_neg,
        }
    }

    pub fn prior(&self) -> f64 {
        self.prior_pos
    }

    fn log_likelihood(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
        let mut ll = 0.0;
        for ((&xi, &mu), &v) in x.iter().zip(mean).zip(var) {
            let d = xi - mu;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + d * d / v);
        }
        ll
    }

    /// Posterior P(attack | x) — the shared core of the single-row and
    /// batched prediction paths.
    #[inline]
    fn posterior(&self, x: &[f64]) -> f64 {
        let lp = self.prior_pos.ln() + Self::log_likelihood(x, &self.mean_pos, &self.var_pos);
        let ln =
            (1.0 - self.prior_pos).ln() + Self::log_likelihood(x, &self.mean_neg, &self.var_neg);
        // Softmax over two log-joint terms, computed stably.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }
}

impl BinaryClassifier for GaussianNb {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        self.posterior(x)
    }

    /// One pass over the batch buffer with the per-feature Gaussian
    /// normalization terms `ln(2πσ²)` hoisted out of the row loop — they
    /// depend only on the model, and `ln` is deterministic, so caching
    /// them keeps every row's floating-point op sequence (and therefore
    /// its bits) identical to [`GaussianNb::predict_proba_one`].
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        let ln_norm = |var: &[f64]| -> Vec<f64> {
            var.iter()
                .map(|&v| (2.0 * std::f64::consts::PI * v).ln())
                .collect()
        };
        let norm_pos = ln_norm(&self.var_pos);
        let norm_neg = ln_norm(&self.var_neg);
        let prior_lp = self.prior_pos.ln();
        let prior_ln = (1.0 - self.prior_pos).ln();
        let ll = |x: &[f64], mean: &[f64], var: &[f64], norm: &[f64]| -> f64 {
            let mut acc = 0.0;
            for (((&xi, &mu), &v), &n) in x.iter().zip(mean).zip(var).zip(norm) {
                let d = xi - mu;
                acc += -0.5 * (n + d * d / v);
            }
            acc
        };
        for (row, o) in rows.chunks_exact(n_features).zip(out.iter_mut()) {
            let lp = prior_lp + ll(row, &self.mean_pos, &self.var_pos, &norm_pos);
            let ln = prior_ln + ll(row, &self.mean_neg, &self.var_neg, &norm_neg);
            let m = lp.max(ln);
            let ep = (lp - m).exp();
            let en = (ln - m).exp();
            *o = ep / (ep + en);
        }
    }

    fn name(&self) -> &'static str {
        "GNB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::blobs;

    #[test]
    fn learns_separable_blobs() {
        let train = blobs(200, 4, 2.0);
        let test = blobs(50, 4, 2.0);
        let gnb = GaussianNb::fit(&train);
        assert!(gnb.evaluate(&test).accuracy() > 0.99);
    }

    #[test]
    fn prior_matches_class_balance() {
        let mut d = blobs(10, 2, 1.0); // balanced: prior 0.5
        let gnb = GaussianNb::fit(&d);
        assert!((gnb.prior() - 0.5).abs() < 1e-12);
        // Skew it.
        for _ in 0..20 {
            d.push(&[5.0, 5.0], true);
        }
        let gnb = GaussianNb::fit(&d);
        assert!((gnb.prior() - 30.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], true);
        d.push(&[2.0], true);
        GaussianNb::fit(&d);
    }

    #[test]
    fn proba_is_calibrated_at_midpoint() {
        // Symmetric blobs: the midpoint should score ≈ 0.5.
        let d = blobs(500, 1, 2.0);
        let gnb = GaussianNb::fit(&d);
        let p = gnb.predict_proba_one(&[0.0]);
        assert!((p - 0.5).abs() < 0.1, "midpoint proba {p}");
        assert!(gnb.predict_proba_one(&[2.0]) > 0.9);
        assert!(gnb.predict_proba_one(&[-2.0]) < 0.1);
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(&[i as f64, 7.0], i % 2 == 0);
        }
        let gnb = GaussianNb::fit(&d);
        let p = gnb.predict_proba_one(&[3.0, 7.0]);
        assert!(p.is_finite());
    }

    #[test]
    fn extreme_inputs_stay_finite() {
        let d = blobs(50, 3, 1.0);
        let gnb = GaussianNb::fit(&d);
        let p = gnb.predict_proba_one(&[1e12, -1e12, 0.0]);
        assert!(p.is_finite());
        assert!((0.0..=1.0).contains(&p));
    }

    use crate::dataset::Dataset;
}
