//! Row-major labeled dataset with splitting and sampling utilities.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense binary-labeled dataset. Rows are feature vectors; labels are
/// `true` = attack, `false` = benign (the paper codes these 1 and 0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    n_features: usize,
    x: Vec<f64>,
    y: Vec<bool>,
}

impl Dataset {
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        Self {
            n_features,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    pub fn with_capacity(n_features: usize, rows: usize) -> Self {
        let mut d = Self::new(n_features);
        d.x.reserve(rows * n_features);
        d.y.reserve(rows);
        d
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Append one row.
    pub fn push(&mut self, row: &[f64], label: bool) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        self.x.extend_from_slice(row);
        self.y.push(label);
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    #[inline]
    pub fn label(&self, i: usize) -> bool {
        self.y[i]
    }

    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    pub fn rows(&self) -> impl Iterator<Item = (&[f64], bool)> {
        self.x
            .chunks_exact(self.n_features)
            .zip(self.y.iter().copied())
    }

    /// (positives, negatives).
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|&&l| l).count();
        (pos, self.y.len() - pos)
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.class_counts().0 as f64 / self.y.len() as f64
        }
    }

    /// Build a new dataset from selected row indices.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut d = Dataset::with_capacity(self.n_features, indices.len());
        for &i in indices {
            d.push(self.row(i), self.y[i]);
        }
        d
    }

    /// Shuffled train/test split; `train_fraction` in (0, 1). The paper
    /// uses 90:10 (§IV-B.3).
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut SmallRng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (self.select(&idx[..cut]), self.select(&idx[cut..]))
    }

    /// Uniform random subsample keeping roughly `fraction` of rows —
    /// the paper's "one thousandth of the whole sample" for KNN.
    pub fn subsample(&self, fraction: f64, seed: u64) -> Dataset {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(self.n_features);
        for i in 0..self.len() {
            if rng.random::<f64>() < fraction {
                d.push(self.row(i), self.y[i]);
            }
        }
        // Guarantee at least one row of each present class so downstream
        // fits don't degenerate.
        if d.is_empty() && !self.is_empty() {
            d.push(self.row(0), self.y[0]);
        }
        d
    }

    /// Concatenate two datasets (same width).
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.n_features, other.n_features);
        let mut d = self.clone();
        d.x.extend_from_slice(&other.x);
        d.y.extend_from_slice(&other.y);
        d
    }

    /// Bootstrap sample of `n` rows (with replacement) — random forest
    /// bagging.
    pub fn bootstrap_indices(&self, n: usize, rng: &mut SmallRng) -> Vec<usize> {
        (0..n).map(|_| rng.random_range(0..self.len())).collect()
    }

    /// Borrow the raw row-major buffer.
    pub fn raw(&self) -> &[f64] {
        &self.x
    }

    /// Mutable access for in-place transforms (scaler).
    pub(crate) fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            d.push(&[i as f64, (i * 2) as f64], i % 3 == 0);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(3), &[3.0, 6.0]);
        assert!(d.label(3));
        assert!(!d.label(4));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], true);
    }

    #[test]
    fn class_counts_and_rate() {
        let d = toy(9); // labels true at 0,3,6 → 3 positives
        assert_eq!(d.class_counts(), (3, 6));
        assert!((d.positive_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_rows_and_ratio() {
        let d = toy(100);
        let (train, test) = d.train_test_split(0.9, 7);
        assert_eq!(train.len(), 90);
        assert_eq!(test.len(), 10);
        // No row invented: every test row exists in the original.
        for (row, _) in test.rows() {
            assert!((0..d.len()).any(|i| d.row(i) == row));
        }
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = toy(50);
        let (a, _) = d.train_test_split(0.8, 1);
        let (b, _) = d.train_test_split(0.8, 1);
        assert_eq!(a, b);
        let (c, _) = d.train_test_split(0.8, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn subsample_hits_fraction() {
        let d = toy(10_000);
        let s = d.subsample(0.1, 3);
        assert!(s.len() > 800 && s.len() < 1200, "got {}", s.len());
    }

    #[test]
    fn subsample_never_empty() {
        let d = toy(5);
        let s = d.subsample(1e-9, 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn select_and_concat() {
        let d = toy(10);
        let a = d.select(&[0, 1, 2]);
        let b = d.select(&[3, 4]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.row(3), d.row(3));
    }

    #[test]
    fn bootstrap_has_requested_size_in_range() {
        let d = toy(20);
        let mut rng = SmallRng::seed_from_u64(1);
        let idx = d.bootstrap_indices(35, &mut rng);
        assert_eq!(idx.len(), 35);
        assert!(idx.iter().all(|&i| i < 20));
    }
}
