//! Feature importances.
//!
//! Paper Table V reports the top-5 features per model. Random forests
//! get mean-decrease-in-impurity natively
//! ([`crate::tree::RandomForest::feature_importances`]); every other
//! model gets **permutation importance**: shuffle one feature column in
//! the evaluation set and measure how much the F1 score drops.

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Permutation importance of every feature of `model` on `data`.
///
/// Returns one score per feature: baseline F1 minus F1 with that feature
/// column permuted, averaged over `repeats` shuffles. Scores can be
/// slightly negative for irrelevant features (noise); callers usually
/// rank and keep the top-k.
pub fn permutation_importance(
    model: &dyn BinaryClassifier,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(repeats > 0);
    let baseline = model.evaluate(data).f1();
    let d = data.n_features();
    let n = data.len();
    let mut importances = vec![0.0; d];
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut column: Vec<f64> = Vec::with_capacity(n);
    let mut row_buf: Vec<f64> = Vec::with_capacity(d);
    for f in 0..d {
        let mut drop_sum = 0.0;
        for _ in 0..repeats {
            column.clear();
            column.extend((0..n).map(|i| data.row(i)[f]));
            column.shuffle(&mut rng);
            // Score with feature f replaced by the shuffled column.
            let mut m = crate::metrics::ConfusionMatrix::new();
            for (i, &shuffled) in column.iter().enumerate() {
                row_buf.clear();
                row_buf.extend_from_slice(data.row(i));
                row_buf[f] = shuffled;
                m.record(data.label(i), model.predict_one(&row_buf));
            }
            drop_sum += baseline - m.f1();
        }
        importances[f] = drop_sum / repeats as f64;
    }
    importances
}

/// Indices of the `k` largest scores, descending.
pub fn top_k_features(importances: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..importances.len()).collect();
    idx.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnb::GaussianNb;

    /// Feature 0 decides the label; features 1-2 are noise.
    fn informative_dataset() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..600 {
            let label = i % 2 == 0;
            let x0 = if label { 2.0 } else { -2.0 };
            let n1 = ((i * 131) % 97) as f64 / 97.0 - 0.5;
            let n2 = ((i * 17) % 89) as f64 / 89.0 - 0.5;
            d.push(&[x0 + n1 * 0.1, n1 * 4.0, n2 * 4.0], label);
        }
        d
    }

    #[test]
    fn informative_feature_dominates() {
        let d = informative_dataset();
        let model = GaussianNb::fit(&d);
        let imp = permutation_importance(&model, &d, 3, 1);
        assert!(imp[0] > 0.3, "importances {imp:?}");
        assert!(imp[0] > imp[1] * 5.0 && imp[0] > imp[2] * 5.0);
    }

    #[test]
    fn noise_features_near_zero() {
        let d = informative_dataset();
        let model = GaussianNb::fit(&d);
        let imp = permutation_importance(&model, &d, 3, 2);
        assert!(imp[1].abs() < 0.05);
        assert!(imp[2].abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = informative_dataset();
        let model = GaussianNb::fit(&d);
        let a = permutation_importance(&model, &d, 2, 9);
        let b = permutation_importance(&model, &d, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn top_k_ranks_descending() {
        let scores = [0.1, 0.9, 0.0, 0.5];
        assert_eq!(top_k_features(&scores, 3), vec![1, 3, 0]);
        assert_eq!(top_k_features(&scores, 10), vec![1, 3, 0, 2]);
        assert!(top_k_features(&scores, 0).is_empty());
    }

    use crate::dataset::Dataset;
}
