//! K-Nearest Neighbors (brute force).
//!
//! The paper notes KNN's cost: training/testing ran on "one thousandth of
//! the whole sample" (Table III note) and the testbed experiment dropped
//! KNN entirely "because of its relatively slower prediction times"
//! (§IV-C.3). Our implementation is exact brute force with a rayon-
//! parallel batch path, and [`Knn::fit_subsampled`] mirrors the paper's
//! subsampling.

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A fitted (memorized) KNN model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knn {
    k: usize,
    train: Dataset,
}

impl Knn {
    /// Memorize the training set. `k` is clamped to the sample count.
    pub fn fit(train: Dataset, k: usize) -> Self {
        assert!(!train.is_empty(), "KNN needs at least one training row");
        let k = k.clamp(1, train.len());
        Self { k, train }
    }

    /// The paper's recipe: keep ~`fraction` of rows, then memorize.
    pub fn fit_subsampled(data: &Dataset, k: usize, fraction: f64, seed: u64) -> Self {
        Self::fit(data.subsample(fraction, seed), k)
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    #[inline]
    fn dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Fraction of positive labels among the k nearest neighbors.
    fn vote(&self, x: &[f64]) -> f64 {
        // Max-heap of (dist2, label) capped at k: O(n log k).
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry(f64, bool);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(self.k + 1);
        for (row, label) in self.train.rows() {
            let d = Self::dist2(x, row);
            if heap.len() < self.k {
                heap.push(Entry(d, label));
            } else if heap.peek().is_some_and(|top| d < top.0) {
                heap.pop();
                heap.push(Entry(d, label));
            }
        }
        let k = heap.len();
        let pos = heap.into_iter().filter(|e| e.1).count();
        pos as f64 / k as f64
    }

    /// Parallel batch prediction (the serial trait path is fine for
    /// single flows; sweeps want this). Thin wrapper over the columnar
    /// [`BinaryClassifier::predict_proba_batch`] path.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<bool> {
        let mut proba = vec![0.0; data.len()];
        self.predict_proba_batch(data.raw(), data.n_features(), &mut proba);
        proba.into_iter().map(crate::model::decide).collect()
    }
}

impl BinaryClassifier for Knn {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        self.vote(x)
    }

    /// Rayon over contiguous query rows — each worker scans the
    /// memorized training matrix sequentially, so the training data
    /// streams through cache once per worker instead of once per query
    /// context switch. Per-row votes are the exact single-row
    /// computation, so results are bit-identical.
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        if out.is_empty() {
            return;
        }
        rows.par_chunks_exact(n_features)
            .zip(out.par_iter_mut())
            .for_each(|(row, o)| *o = self.vote(row));
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::blobs;

    #[test]
    fn nearest_neighbor_is_exact_on_training_points() {
        let d = blobs(50, 3, 2.0);
        let knn = Knn::fit(d.clone(), 1);
        for (row, label) in d.rows() {
            assert_eq!(knn.predict_one(row), label);
        }
    }

    #[test]
    fn k5_learns_blobs() {
        let train = blobs(100, 4, 2.0);
        let test = blobs(30, 4, 2.0);
        let knn = Knn::fit(train, 5);
        assert!(knn.evaluate(&test).accuracy() > 0.99);
    }

    #[test]
    fn k_is_clamped_to_sample_count() {
        let d = blobs(2, 2, 1.0); // 4 rows
        let knn = Knn::fit(d, 100);
        assert_eq!(knn.k(), 4);
    }

    #[test]
    fn vote_fraction_is_proba() {
        // 3 positives near origin, 2 negatives slightly further.
        let mut d = Dataset::new(1);
        d.push(&[0.0], true);
        d.push(&[0.1], true);
        d.push(&[0.2], true);
        d.push(&[0.9], false);
        d.push(&[1.0], false);
        let knn = Knn::fit(d, 5);
        let p = knn.predict_proba_one(&[0.0]);
        assert!((p - 0.6).abs() < 1e-12);
        assert!(knn.predict_one(&[0.0]));
    }

    #[test]
    fn subsampled_fit_shrinks_train_set() {
        let d = blobs(5000, 2, 2.0); // 10k rows
        let knn = Knn::fit_subsampled(&d, 5, 0.01, 3);
        assert!(knn.train_len() < 300, "kept {}", knn.train_len());
        // Still learns the easy structure.
        let test = blobs(50, 2, 2.0);
        assert!(knn.evaluate(&test).accuracy() > 0.95);
    }

    #[test]
    fn batch_matches_serial() {
        let train = blobs(80, 3, 1.0);
        let test = blobs(40, 3, 1.0);
        let knn = Knn::fit(train, 3);
        let batch = knn.predict_batch(&test);
        let serial = knn.predict(&test);
        assert_eq!(batch, serial);
    }

    use crate::dataset::Dataset;
}
