//! Multi-layer perceptron: ReLU hidden layers, sigmoid output, binary
//! cross-entropy loss, Adam optimizer, mini-batch training.
//!
//! Two presets match the paper:
//! * [`MlpConfig::paper_nn`] — 32-16-8 hidden layers (§IV-B.3's "shallow
//!   neural network"),
//! * [`MlpConfig::paper_mlp`] — 64-32-16 hidden layers (§IV-C.3's
//!   scikit-learn `MLPClassifier`).

use crate::dataset::Dataset;
use crate::model::BinaryClassifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    /// L2 penalty (scikit-learn's `alpha`).
    pub l2: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: vec![32, 16, 8],
            epochs: 30,
            batch_size: 128,
            learning_rate: 1e-3,
            l2: 1e-4,
        }
    }
}

impl MlpConfig {
    /// The §IV-B shallow NN: 32-16-8.
    pub fn paper_nn() -> Self {
        Self::default()
    }

    /// The §IV-C MLPClassifier: 64-32-16.
    pub fn paper_mlp() -> Self {
        Self {
            hidden: vec![64, 32, 16],
            ..Self::default()
        }
    }
}

/// One dense layer's parameters and Adam state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// Row-major [out × in] weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut SmallRng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    /// z = W·x + b.
    fn forward(&self, x: &[f64], z: &mut Vec<f64>) {
        z.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            z.push(acc);
        }
    }

    /// Z = W·A + b over a feature-major (column-major) batch — the
    /// matrix-matrix form of [`Layer::forward`]. `a` holds `n_in`
    /// columns of `n_rows` values each (`a[i * n_rows + r]` is feature
    /// `i` of row `r`); `z` comes out in the same layout with `n_out`
    /// columns. The inner loop is a unit-stride AXPY over a row tile,
    /// which the compiler vectorizes; each row's accumulator still sees
    /// `b + w0·x0 + w1·x1 + …` in ascending-feature order, so the output
    /// is bit-identical to calling `forward` row by row.
    fn forward_batch(&self, a: &[f64], n_rows: usize, z: &mut Vec<f64>) {
        /// Rows per register tile: 8 × 4 output units of f64
        /// accumulators fit the vector register file, so `z` is written
        /// exactly once per element instead of read-modify-written per
        /// input feature.
        const RB: usize = 8;
        /// Output units per register tile.
        const OB: usize = 4;
        z.clear();
        z.resize(n_rows * self.n_out, 0.0);
        let n_in = self.n_in;
        let mut r0 = 0;
        while r0 + RB <= n_rows {
            let mut o0 = 0;
            while o0 + OB <= self.n_out {
                let mut acc = [[0.0f64; RB]; OB];
                for (u, accu) in acc.iter_mut().enumerate() {
                    accu.fill(self.b[o0 + u]);
                }
                for i in 0..n_in {
                    let ac = &a[i * n_rows + r0..i * n_rows + r0 + RB];
                    for (u, accu) in acc.iter_mut().enumerate() {
                        let w = self.w[(o0 + u) * n_in + i];
                        for k in 0..RB {
                            accu[k] += w * ac[k];
                        }
                    }
                }
                for (u, accu) in acc.iter().enumerate() {
                    let at = (o0 + u) * n_rows + r0;
                    z[at..at + RB].copy_from_slice(accu);
                }
                o0 += OB;
            }
            while o0 < self.n_out {
                let mut accu = [self.b[o0]; RB];
                for i in 0..n_in {
                    let ac = &a[i * n_rows + r0..i * n_rows + r0 + RB];
                    let w = self.w[o0 * n_in + i];
                    for k in 0..RB {
                        accu[k] += w * ac[k];
                    }
                }
                let at = o0 * n_rows + r0;
                z[at..at + RB].copy_from_slice(&accu);
                o0 += 1;
            }
            r0 += RB;
        }
        // Row tail: plain per-(row, unit) dot products, same order.
        for r in r0..n_rows {
            for o in 0..self.n_out {
                let mut acc = self.b[o];
                for i in 0..n_in {
                    acc += self.w[o * n_in + i] * a[i * n_rows + r];
                }
                z[o * n_rows + r] = acc;
            }
        }
    }
}

#[inline]
fn relu(x: f64) -> f64 {
    x.max(0.0)
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The trained network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    config: MlpConfig,
    /// Adam step counter.
    t: u64,
}

impl Mlp {
    /// Train on `data` (expected pre-scaled — see
    /// [`crate::scaler::StandardScaler`]).
    pub fn fit(data: &Dataset, config: &MlpConfig, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dims = vec![data.n_features()];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        let mut net = Mlp {
            layers,
            config: config.clone(),
            t: 0,
        };
        net.train(data, &mut rng);
        net
    }

    fn train(&mut self, data: &Dataset, rng: &mut SmallRng) {
        let mut order: Vec<usize> = (0..data.len()).collect();
        let epochs = self.config.epochs;
        let batch = self.config.batch_size.max(1);
        for _ in 0..epochs {
            order.shuffle(rng);
            for chunk in order.chunks(batch) {
                self.step(data, chunk);
            }
        }
    }

    /// One Adam step over a mini-batch.
    fn step(&mut self, data: &Dataset, batch: &[usize]) {
        let l = self.layers.len();
        // Accumulated gradients per layer.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|ly| vec![0.0; ly.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|ly| vec![0.0; ly.b.len()]).collect();

        // Forward/backward per sample (batch sizes are small; simplicity
        // beats a GEMM here and the hot path is prediction anyway).
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(l + 1);
        let mut zs: Vec<Vec<f64>> = vec![Vec::new(); l];
        for &i in batch {
            acts.clear();
            acts.push(data.row(i).to_vec());
            for (li, layer) in self.layers.iter().enumerate() {
                let mut z = std::mem::take(&mut zs[li]);
                // acts[li] is the previous layer's activation: one entry
                // was pushed before the loop and one per iteration.
                layer.forward(&acts[li], &mut z);
                let a = if li + 1 == l {
                    z.iter().map(|&v| sigmoid(v)).collect()
                } else {
                    z.iter().map(|&v| relu(v)).collect()
                };
                zs[li] = z;
                acts.push(a);
            }

            // Output delta for sigmoid + BCE: (ŷ − y).
            let y = f64::from(u8::from(data.label(i)));
            let mut delta = vec![acts[l][0] - y];

            for li in (0..l).rev() {
                let a_in = &acts[li];
                let layer = &self.layers[li];
                // Accumulate gradients.
                for o in 0..layer.n_out {
                    gb[li][o] += delta[o];
                    let grow = &mut gw[li][o * layer.n_in..(o + 1) * layer.n_in];
                    for (g, &ai) in grow.iter_mut().zip(a_in) {
                        *g += delta[o] * ai;
                    }
                }
                if li == 0 {
                    break;
                }
                // Propagate: δ_in = Wᵀ·δ ⊙ relu'(z_in).
                let mut next = vec![0.0; layer.n_in];
                for (o, &d_o) in delta.iter().enumerate().take(layer.n_out) {
                    let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                    for (nv, &wi) in next.iter_mut().zip(row) {
                        *nv += wi * d_o;
                    }
                }
                for (nv, &z) in next.iter_mut().zip(&zs[li - 1]) {
                    if z <= 0.0 {
                        *nv = 0.0;
                    }
                }
                delta = next;
            }
        }

        // Adam update.
        self.t += 1;
        let n = batch.len() as f64;
        let lr = self.config.learning_rate;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (j, w) in layer.w.iter_mut().enumerate() {
                let g = gw[li][j] / n + self.config.l2 * *w;
                layer.mw[j] = b1 * layer.mw[j] + (1.0 - b1) * g;
                layer.vw[j] = b2 * layer.vw[j] + (1.0 - b2) * g * g;
                *w -= lr * (layer.mw[j] / bc1) / ((layer.vw[j] / bc2).sqrt() + eps);
            }
            for (j, b) in layer.b.iter_mut().enumerate() {
                let g = gb[li][j] / n;
                layer.mb[j] = b1 * layer.mb[j] + (1.0 - b1) * g;
                layer.vb[j] = b2 * layer.vb[j] + (1.0 - b2) * g * g;
                *b -= lr * (layer.mb[j] / bc1) / ((layer.vb[j] / bc2).sqrt() + eps);
            }
        }
    }

    pub fn hidden_sizes(&self) -> Vec<usize> {
        self.config.hidden.clone()
    }

    /// Parameter count (weights + biases) — the paper prefers the MLP to
    /// the earlier NN partly for model-size reasons.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

impl BinaryClassifier for Mlp {
    fn predict_proba_one(&self, x: &[f64]) -> f64 {
        let l = self.layers.len();
        let mut a = x.to_vec();
        let mut z = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&a, &mut z);
            if li + 1 == l {
                return sigmoid(z[0]);
            }
            a.clear();
            a.extend(z.iter().map(|&v| relu(v)));
        }
        unreachable!("network has at least one layer")
    }

    /// Whole-batch forward pass: the batch is transposed once into
    /// feature-major columns, then every layer runs as one tiled,
    /// vectorizable matrix-matrix multiply instead of a matrix-vector
    /// product per row. Two ping-pong activation buffers are the only
    /// allocations, amortized over the batch.
    fn predict_proba_batch(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        crate::model::check_batch_shape(rows, n_features, out.len());
        let n_rows = out.len();
        if n_rows == 0 {
            return;
        }
        assert_eq!(
            n_features, self.layers[0].n_in,
            "feature width does not match the input layer"
        );
        let l = self.layers.len();
        // Transpose row-major input into feature-major columns.
        let mut a = vec![0.0; rows.len()];
        for (r, row) in rows.chunks_exact(n_features).enumerate() {
            for (i, &v) in row.iter().enumerate() {
                a[i * n_rows + r] = v;
            }
        }
        let mut z: Vec<f64> = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward_batch(&a, n_rows, &mut z);
            if li + 1 == l {
                // The output layer has one unit: z is one logit per row.
                for (o, &v) in out.iter_mut().zip(&z) {
                    *o = sigmoid(v);
                }
                return;
            }
            for v in z.iter_mut() {
                *v = relu(*v);
            }
            std::mem::swap(&mut a, &mut z);
        }
        unreachable!("network has at least one layer")
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_util::blobs;

    fn quick_cfg() -> MlpConfig {
        MlpConfig {
            hidden: vec![16, 8],
            epochs: 60,
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn learns_separable_blobs() {
        let train = blobs(200, 4, 2.0);
        let test = blobs(50, 4, 2.0);
        let mlp = Mlp::fit(&train, &quick_cfg(), 1);
        assert!(mlp.evaluate(&test).accuracy() > 0.99);
    }

    #[test]
    fn learns_xor_nonlinearity() {
        // XOR on two features: linearly inseparable, solvable with one
        // hidden layer.
        let mut d = Dataset::new(2);
        for i in 0..400 {
            let a = i % 2 == 0;
            let b = (i / 2) % 2 == 0;
            let jitter = ((i * 37) % 100) as f64 / 1000.0;
            d.push(
                &[
                    if a { 1.0 } else { -1.0 } + jitter,
                    if b { 1.0 } else { -1.0 } - jitter,
                ],
                a ^ b,
            );
        }
        let cfg = MlpConfig {
            hidden: vec![16],
            epochs: 200,
            batch_size: 32,
            ..Default::default()
        };
        let mlp = Mlp::fit(&d, &cfg, 3);
        assert!(mlp.evaluate(&d).accuracy() > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = blobs(50, 3, 2.0);
        let a = Mlp::fit(&d, &quick_cfg(), 7);
        let b = Mlp::fit(&d, &quick_cfg(), 7);
        let x = [0.5, -0.5, 1.0];
        assert_eq!(a.predict_proba_one(&x), b.predict_proba_one(&x));
    }

    #[test]
    fn paper_presets_have_stated_shapes() {
        assert_eq!(MlpConfig::paper_nn().hidden, vec![32, 16, 8]);
        assert_eq!(MlpConfig::paper_mlp().hidden, vec![64, 32, 16]);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let d = blobs(10, 4, 2.0);
        let cfg = MlpConfig {
            hidden: vec![8, 4],
            epochs: 1,
            ..Default::default()
        };
        let mlp = Mlp::fit(&d, &cfg, 1);
        // (4×8+8) + (8×4+4) + (4×1+1) = 40 + 36 + 5 = 81.
        assert_eq!(mlp.parameter_count(), 81);
        assert_eq!(mlp.hidden_sizes(), vec![8, 4]);
    }

    #[test]
    fn proba_bounded_and_finite() {
        let d = blobs(50, 2, 2.0);
        let mlp = Mlp::fit(&d, &quick_cfg(), 2);
        for x in [[10.0, 10.0], [-10.0, -10.0], [0.0, 0.0]] {
            let p = mlp.predict_proba_one(&x);
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(super::sigmoid(1000.0), 1.0);
        assert_eq!(super::sigmoid(-1000.0), 0.0);
        assert!((super::sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    use crate::dataset::Dataset;
}
