//! From-scratch machine learning for the DDoS detection pipeline.
//!
//! Implements the paper's four model families with the stated
//! hyperparameters:
//!
//! * **Random Forest** (Gini CART trees, bootstrap + feature subsampling,
//!   trained in parallel with rayon),
//! * **Gaussian Naive Bayes**,
//! * **K-Nearest Neighbors** (brute force; the paper subsamples to 1/1000
//!   for tractability — so do our experiment harnesses),
//! * **MLP / shallow neural network** (ReLU hidden layers, sigmoid
//!   output, Adam; 32-16-8 for the "NN" of §IV-B and 64-32-16 for the
//!   "MLP" of §IV-C).
//!
//! Plus the supporting cast: standard scaler, train/test split, binary
//! metrics and confusion matrices, impurity- and permutation-based
//! feature importances, and the 2-of-3 majority ensemble of §IV-C.4.
//!
//! Everything is deterministic given a seed.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod crossval;
pub mod dataset;
pub mod ensemble;
pub mod error;
pub mod gbt;
pub mod gnb;
pub mod importance;
pub mod knn;
pub mod meta;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod roc;
pub mod scaler;
pub mod tree;

pub use crossval::{cross_validate, kfold_indices, CvReport};
pub use dataset::Dataset;
pub use ensemble::MajorityEnsemble;
pub use error::MlError;
pub use gbt::{GbtConfig, GradientBoost};
pub use gnb::GaussianNb;
pub use importance::{permutation_importance, top_k_features};
pub use knn::Knn;
pub use meta::{BundleMeta, MetaError, BUNDLE_SCHEMA_VERSION};
pub use metrics::{BinaryMetrics, ConfusionMatrix};
pub use mlp::{Mlp, MlpConfig};
pub use model::{decide, BinaryClassifier};
pub use roc::{RocCurve, RocPoint};
pub use scaler::StandardScaler;
pub use tree::{DecisionTree, RandomForest, RandomForestConfig, TreeConfig};
