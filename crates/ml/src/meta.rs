//! Bundle provenance: who trained this model, on what, and when.
//!
//! A deployed bundle outlives the process that trained it, so the
//! artifact itself must carry enough metadata for a loader to refuse
//! rather than mispredict: the serialization schema it was written
//! under, the feature width it expects, the training window it saw,
//! and the publication epoch it was stamped with. The epoch is what
//! the live pipeline threads through every verdict (see
//! `amlight_core::epoch`), turning "which model said this?" from a
//! deployment-log archaeology question into a database column.

use serde::{Deserialize, Serialize};

/// Version of the persisted bundle layout. Bump when `ModelBundle`'s
/// serialized shape changes incompatibly; loaders reject mismatches.
/// v3: `feature_set` became a column-mask descriptor (was a 2-variant
/// backend enum) when the telemetry registry landed.
pub const BUNDLE_SCHEMA_VERSION: u32 = 3;

/// Provenance stamped into every trained bundle and carried through to
/// each verdict the bundle produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleMeta {
    /// Persisted-layout version; see [`BUNDLE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Publication epoch: 0 for an offline-trained bundle, incremented
    /// by the epoch handle on every hot-swap publish.
    pub epoch: u64,
    /// Feature-row width the models were fit on. A loader feeding a
    /// different width would silently mispredict — reject instead.
    pub n_features: usize,
    /// Number of labeled rows in the training set.
    pub n_rows: usize,
    /// Telemetry-time bounds (ns) of the training window, `0..=0` when
    /// the trainer saw no timestamps.
    pub train_window_start_ns: u64,
    pub train_window_end_ns: u64,
}

/// Why a bundle's metadata makes it unusable here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// Written under a different persisted layout.
    SchemaVersion { found: u32, expected: u32 },
    /// Fit on a different feature width than the caller will feed it.
    FeatureWidth { found: usize, expected: usize },
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::SchemaVersion { found, expected } => write!(
                f,
                "bundle schema v{found} is not the supported v{expected}; retrain the bundle"
            ),
            MetaError::FeatureWidth { found, expected } => write!(
                f,
                "bundle was trained on {found}-wide feature rows but this \
                 pipeline produces {expected}-wide rows"
            ),
        }
    }
}

impl std::error::Error for MetaError {}

impl BundleMeta {
    /// Metadata for a freshly (offline-)trained bundle: epoch 0, the
    /// current schema version, and the given training provenance.
    pub fn offline(n_features: usize, n_rows: usize, window_ns: (u64, u64)) -> Self {
        Self {
            schema_version: BUNDLE_SCHEMA_VERSION,
            epoch: 0,
            n_features,
            n_rows,
            train_window_start_ns: window_ns.0,
            train_window_end_ns: window_ns.1,
        }
    }

    /// Reject stale or mismatched bundles before they can mispredict.
    pub fn validate(&self, expected_features: usize) -> Result<(), MetaError> {
        if self.schema_version != BUNDLE_SCHEMA_VERSION {
            return Err(MetaError::SchemaVersion {
                found: self.schema_version,
                expected: BUNDLE_SCHEMA_VERSION,
            });
        }
        if self.n_features != expected_features {
            return Err(MetaError::FeatureWidth {
                found: self.n_features,
                expected: expected_features,
            });
        }
        Ok(())
    }

    /// Duration of the training window in nanoseconds.
    pub fn train_window_ns(&self) -> u64 {
        self.train_window_end_ns
            .saturating_sub(self.train_window_start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_meta_validates_against_its_own_width() {
        let m = BundleMeta::offline(15, 1000, (10, 500));
        assert_eq!(m.epoch, 0);
        assert_eq!(m.schema_version, BUNDLE_SCHEMA_VERSION);
        assert_eq!(m.train_window_ns(), 490);
        assert!(m.validate(15).is_ok());
    }

    #[test]
    fn width_mismatch_is_rejected_with_both_sides_named() {
        let m = BundleMeta::offline(12, 10, (0, 0));
        let err = m.validate(15).unwrap_err();
        assert_eq!(
            err,
            MetaError::FeatureWidth {
                found: 12,
                expected: 15
            }
        );
        assert!(err.to_string().contains("12-wide"));
    }

    #[test]
    fn old_schema_is_rejected() {
        let m = BundleMeta {
            schema_version: BUNDLE_SCHEMA_VERSION - 1,
            ..BundleMeta::offline(15, 10, (0, 0))
        };
        let err = m.validate(15).unwrap_err();
        assert!(matches!(err, MetaError::SchemaVersion { .. }));
        assert!(err.to_string().contains("retrain"));
    }

    #[test]
    fn meta_roundtrips_through_json() {
        let m = BundleMeta {
            epoch: 7,
            ..BundleMeta::offline(15, 42, (100, 900))
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: BundleMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn inverted_window_saturates_to_zero() {
        let m = BundleMeta::offline(15, 1, (500, 10));
        assert_eq!(m.train_window_ns(), 0);
    }
}
