//! Standardization to zero mean / unit variance.
//!
//! The paper's Prediction module "uploads … the coefficients of scaler
//! transformation, which are used to standardize the feature values to
//! unit variance" (§III-4) — i.e. scikit-learn's `StandardScaler`. The
//! scaler is fitted offline on the training set and shipped with the
//! models.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Per-feature mean/std transform.
///
/// ```
/// use amlight_ml::{Dataset, StandardScaler};
///
/// let mut data = Dataset::new(2);
/// data.push(&[1.0, 100.0], false);
/// data.push(&[3.0, 300.0], true);
/// let scaler = StandardScaler::fit_transform(&mut data);
/// assert_eq!(data.row(0), &[-1.0, -1.0]);
/// assert_eq!(data.row(1), &[1.0, 1.0]);
/// // Deploy-time: transform unseen rows with the trained statistics.
/// let mut live = vec![2.0, 200.0];
/// scaler.transform_row(&mut live);
/// assert_eq!(live, vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit on a dataset: column means and population standard deviations.
    /// Constant columns get std 1 so they transform to 0, not NaN.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.n_features();
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; d];
        for (row, _) in data.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for (row, _) in data.rows() {
            for ((s, &m), &v) in vars.iter_mut().zip(&means).zip(row) {
                let dlt = v - m;
                *s += dlt * dlt;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    pub fn means(&self) -> &[f64] {
        &self.means
    }

    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transform one row in place.
    #[inline]
    pub fn transform_row(&self, row: &mut [f64]) {
        debug_assert_eq!(row.len(), self.means.len());
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Standardize a contiguous row-major batch into a caller-owned
    /// buffer. `rows` and `out` hold the same number of complete rows;
    /// nothing is allocated, so a reused scratch buffer makes the
    /// per-prediction scaling cost pure arithmetic. Values are written
    /// with exactly the arithmetic of [`StandardScaler::transform_row`],
    /// so batched and per-row scaling are bit-identical.
    pub fn transform_into(&self, rows: &[f64], out: &mut [f64]) {
        let d = self.means.len();
        assert_eq!(
            rows.len(),
            out.len(),
            "scaler batch: input and output sizes differ"
        );
        assert_eq!(
            rows.len() % d.max(1),
            0,
            "scaler batch: {} values is not a whole number of {d}-wide rows",
            rows.len()
        );
        for (src, dst) in rows.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
            for (((o, &v), &m), &s) in dst.iter_mut().zip(src).zip(&self.means).zip(&self.stds) {
                *o = (v - m) / s;
            }
        }
    }

    /// Transform a whole dataset in place.
    pub fn transform(&self, data: &mut Dataset) {
        assert_eq!(data.n_features(), self.n_features());
        let d = self.n_features();
        for row in data.raw_mut().chunks_exact_mut(d) {
            self.transform_row(row);
        }
    }

    /// Fit on `data` and transform it, returning the scaler.
    pub fn fit_transform(data: &mut Dataset) -> Self {
        let s = Self::fit(data);
        s.transform(data);
        s
    }

    /// Undo the transform on one row (testing/debugging aid).
    pub fn inverse_transform_row(&self, row: &mut [f64]) {
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = *v * s + m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let mut d = Dataset::new(3);
        d.push(&[1.0, 10.0, 5.0], false);
        d.push(&[2.0, 20.0, 5.0], true);
        d.push(&[3.0, 30.0, 5.0], false);
        d
    }

    #[test]
    fn fit_computes_column_statistics() {
        let s = StandardScaler::fit(&data());
        assert_eq!(s.means(), &[2.0, 20.0, 5.0]);
        let expected_std = (2.0f64 / 3.0).sqrt();
        assert!((s.stds()[0] - expected_std).abs() < 1e-12);
        assert_eq!(s.stds()[2], 1.0, "constant column gets unit std");
    }

    #[test]
    fn transform_standardizes() {
        let mut d = data();
        let s = StandardScaler::fit_transform(&mut d);
        // Column means ≈ 0 after transform.
        for j in 0..3 {
            let mean: f64 = (0..d.len()).map(|i| d.row(i)[j]).sum::<f64>() / d.len() as f64;
            assert!(mean.abs() < 1e-12, "col {j} mean {mean}");
        }
        // Non-constant columns have unit variance.
        for j in 0..2 {
            let var: f64 = (0..d.len()).map(|i| d.row(i)[j].powi(2)).sum::<f64>() / d.len() as f64;
            assert!((var - 1.0).abs() < 1e-12, "col {j} var {var}");
        }
        // Constant column became all zeros.
        for i in 0..d.len() {
            assert_eq!(d.row(i)[2], 0.0);
        }
        assert_eq!(s.n_features(), 3);
    }

    #[test]
    fn inverse_roundtrips() {
        let d = data();
        let s = StandardScaler::fit(&d);
        let mut row = d.row(1).to_vec();
        s.transform_row(&mut row);
        s.inverse_transform_row(&mut row);
        for (a, b) in row.iter().zip(d.row(1)) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_unseen_row_uses_train_statistics() {
        let s = StandardScaler::fit(&data());
        let mut row = vec![4.0, 40.0, 7.0];
        s.transform_row(&mut row);
        let std0 = (2.0f64 / 3.0).sqrt();
        assert!((row[0] - (4.0 - 2.0) / std0).abs() < 1e-12);
        assert_eq!(row[2], 2.0); // (7-5)/1
    }

    #[test]
    fn transform_into_matches_row_transform() {
        let s = StandardScaler::fit(&data());
        let rows = [4.0, 40.0, 7.0, -1.0, 0.0, 5.0];
        let mut out = [0.0; 6];
        s.transform_into(&rows, &mut out);
        for (chunk, scaled) in rows.chunks_exact(3).zip(out.chunks_exact(3)) {
            let mut row = chunk.to_vec();
            s.transform_row(&mut row);
            assert_eq!(row.as_slice(), scaled, "bit-identical scaling");
        }
        // Empty batch is fine.
        s.transform_into(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn transform_into_rejects_ragged_input() {
        let s = StandardScaler::fit(&data());
        let mut out = [0.0; 4];
        s.transform_into(&[1.0, 2.0, 3.0, 4.0], &mut out);
    }

    #[test]
    fn serde_roundtrip() {
        let s = StandardScaler::fit(&data());
        let json = serde_json::to_string(&s).unwrap();
        let back: StandardScaler = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
