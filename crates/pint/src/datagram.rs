//! PINT datagrams and the collector that decodes and reconstructs them.

use crate::report::PintReport;
use crate::sketch::{PintSketch, SketchConfig};
use amlight_net::{CodecError, Decode, Encode};
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Magic tag opening every PINT datagram on the wire.
pub const DATAGRAM_MAGIC: u16 = 0x914F;

/// A sink → collector datagram: a batch of digest reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PintDatagram {
    pub agent: Ipv4Addr,
    pub sequence: u32,
    pub reports: Vec<PintReport>,
}

impl Encode for PintDatagram {
    fn encoded_len(&self) -> usize {
        2 + 4 + 4 + 2 + self.reports.len() * PintReport::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(DATAGRAM_MAGIC);
        buf.put_slice(&self.agent.octets());
        buf.put_u32(self.sequence);
        // Saturate rather than truncate: 65536 reports `as u16` would
        // alias to a count of 0 and silently drop the whole batch; a
        // saturated count delivers all but the uncounted tail.
        buf.put_u16(u16::try_from(self.reports.len()).unwrap_or(u16::MAX));
        for r in &self.reports {
            r.encode(buf);
        }
    }
}

impl Decode for PintDatagram {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        const FIXED: usize = 2 + 4 + 4 + 2;
        if buf.remaining() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                had: buf.remaining(),
            });
        }
        if buf.get_u16() != DATAGRAM_MAGIC {
            return Err(CodecError::Malformed("bad PINT datagram magic"));
        }
        let mut oct = [0u8; 4];
        buf.copy_to_slice(&mut oct);
        let agent = Ipv4Addr::from(oct);
        let sequence = buf.get_u32();
        let count = buf.get_u16() as usize;
        // The count is attacker bytes: pre-size only to what the buffer
        // could actually hold (amlint R9).
        let mut reports = Vec::with_capacity(count.min(buf.remaining() / PintReport::WIRE_LEN));
        for _ in 0..count {
            reports.push(PintReport::decode(buf)?);
        }
        Ok(Self {
            agent,
            sequence,
            reports,
        })
    }
}

/// Collector: decodes datagrams, tracks sequence gaps, and runs the
/// reconstruction sketch over every accepted digest.
#[derive(Debug)]
pub struct PintCollector {
    sketch: PintSketch,
    reports: Vec<PintReport>,
    datagrams: u64,
    lost_datagrams: u64,
    last_seq: Option<u32>,
    decode_errors: u64,
}

impl Default for PintCollector {
    fn default() -> Self {
        Self::new(SketchConfig::default())
    }
}

impl PintCollector {
    pub fn new(sketch_cfg: SketchConfig) -> Self {
        Self {
            sketch: PintSketch::new(sketch_cfg),
            // amlint: cold -- constructed once per listener at startup
            reports: Vec::new(),
            datagrams: 0,
            lost_datagrams: 0,
            last_seq: None,
            decode_errors: 0,
        }
    }

    /// Ingest one encoded datagram.
    ///
    /// Reports decode straight into the collector's long-lived buffer —
    /// no intermediate [`PintDatagram`] — and the sketch annotates only
    /// the reports this datagram appended. A datagram that fails
    /// mid-decode contributes nothing: partially decoded reports are
    /// rolled back and the sketch never sees them.
    // amlint: hot
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<usize, CodecError> {
        let mut cursor = bytes;
        let before = self.reports.len();
        match self.decode_into_reports(&mut cursor) {
            Ok((sequence, n)) => {
                if let Some(prev) = self.last_seq {
                    let gap = sequence.wrapping_sub(prev);
                    if gap > 1 {
                        self.lost_datagrams += u64::from(gap - 1);
                    }
                }
                self.last_seq = Some(sequence);
                self.datagrams += 1;
                // Reconstruct in arrival order over the appended range.
                for r in &mut self.reports[before..] {
                    self.sketch.annotate(r);
                }
                Ok(n)
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// Decode one datagram's header and append its reports to
    /// `self.reports`; returns (sequence, report count). All-or-nothing:
    /// on error the buffer is truncated back to its prior length.
    fn decode_into_reports<B: Buf>(&mut self, buf: &mut B) -> Result<(u32, usize), CodecError> {
        const FIXED: usize = 2 + 4 + 4 + 2;
        if buf.remaining() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                had: buf.remaining(),
            });
        }
        if buf.get_u16() != DATAGRAM_MAGIC {
            return Err(CodecError::Malformed("bad PINT datagram magic"));
        }
        let mut oct = [0u8; 4];
        buf.copy_to_slice(&mut oct);
        let sequence = buf.get_u32();
        let count = buf.get_u16() as usize;
        let before = self.reports.len();
        for _ in 0..count {
            match PintReport::decode(buf) {
                // amlint: cold -- long-lived collector buffer, amortized at working-set size
                Ok(r) => self.reports.push(r),
                Err(e) => {
                    self.reports.truncate(before);
                    return Err(e);
                }
            }
        }
        Ok((sequence, count))
    }

    pub fn reports(&self) -> &[PintReport] {
        &self.reports
    }

    pub fn take_reports(&mut self) -> Vec<PintReport> {
        std::mem::take(&mut self.reports)
    }

    /// Drop buffered reports while keeping the backing allocation (and
    /// the sketch state — reconstruction survives the drain).
    pub fn clear_reports(&mut self) {
        self.reports.clear();
    }

    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }

    pub fn lost_datagrams(&self) -> u64 {
        self.lost_datagrams
    }

    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Digests whose flow had a fresh queue reconstruction available.
    pub fn reconstructed(&self) -> u64 {
        self.sketch.reconstructed()
    }

    /// Digests served with no fresh queue state.
    pub fn sketch_misses(&self) -> u64 {
        self.sketch.misses()
    }
}

/// Batch reports into datagrams of at most `max_per_datagram`.
pub fn batch_into_datagrams(
    agent: Ipv4Addr,
    reports: &[PintReport],
    max_per_datagram: usize,
) -> Vec<BytesMut> {
    reports
        .chunks(max_per_datagram.max(1))
        .enumerate()
        .map(|(i, chunk)| {
            PintDatagram {
                agent,
                sequence: i as u32,
                reports: chunk.to_vec(),
            }
            .encode_to_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{PintEncoder, PintField};
    use amlight_net::{FlowKey, Protocol};

    fn digest(tag: u32) -> PintReport {
        let enc = PintEncoder::new(8);
        let flow = FlowKey::new(
            [10, 0, 0, 1].into(),
            [10, 0, 0, 2].into(),
            (2000 + tag) as u16,
            443,
            Protocol::Udp,
        );
        enc.encode(flow, 1400, None, u64::from(tag) * 7, &[(3, 500), (9, 800)])
    }

    #[test]
    fn datagram_roundtrip() {
        let d = PintDatagram {
            agent: Ipv4Addr::new(192, 0, 2, 1),
            sequence: 9,
            reports: (0..5).map(digest).collect(),
        };
        let mut cursor = d.encode_to_bytes().freeze();
        assert_eq!(PintDatagram::decode(&mut cursor).unwrap(), d);
    }

    #[test]
    fn collector_accumulates_and_detects_loss() {
        let agent = Ipv4Addr::new(192, 0, 2, 1);
        let all: Vec<PintReport> = (0..10).map(digest).collect();
        let grams = batch_into_datagrams(agent, &all, 3); // seqs 0..=3
        let mut c = PintCollector::default();
        c.ingest(&grams[0]).unwrap();
        c.ingest(&grams[1]).unwrap();
        // Drop gram 2, deliver 3: one lost datagram.
        c.ingest(&grams[3]).unwrap();
        assert_eq!(c.datagrams(), 3);
        assert_eq!(c.lost_datagrams(), 1);
        assert_eq!(c.reports().len(), 3 + 3 + 1);
    }

    #[test]
    fn ingest_annotates_via_sketch() {
        // Same flow, queue digest first: later digests reconstruct.
        let flow = digest(1).flow;
        let q = PintReport {
            field: PintField::QueueOccupancy,
            digest: 6,
            ..digest(1)
        };
        let lat = PintReport {
            field: PintField::HopLatency,
            export_ns: q.export_ns + 10,
            ..q
        };
        let grams = batch_into_datagrams(Ipv4Addr::new(1, 1, 1, 1), &[q, lat], 10);
        let mut c = PintCollector::default();
        c.ingest(&grams[0]).unwrap();
        assert_eq!(c.reports()[0].flow, flow);
        assert_eq!(c.reports()[0].queue_occupancy, Some(6));
        assert_eq!(c.reports()[1].queue_occupancy, Some(6), "sketch carry-over");
        assert_eq!(c.reconstructed(), 2);
    }

    #[test]
    fn collector_counts_decode_errors() {
        let mut c = PintCollector::default();
        assert!(c.ingest(&[0u8; 4]).is_err());
        assert_eq!(c.decode_errors(), 1);
        assert!(c
            .ingest(&[0xde, 0xad, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
            .is_err());
        assert_eq!(c.decode_errors(), 2);
    }

    #[test]
    fn mid_datagram_error_rolls_back_partial_reports() {
        let agent = Ipv4Addr::new(192, 0, 2, 1);
        let all: Vec<PintReport> = (0..6).map(digest).collect();
        let grams = batch_into_datagrams(agent, &all, 3);
        let mut c = PintCollector::default();
        c.ingest(&grams[0]).unwrap();
        let recon = c.reconstructed() + c.sketch_misses();
        // Truncate the second datagram inside its 2nd report: the first
        // report decodes fine but must not survive the failed ingest —
        // and must never reach the sketch.
        let cut = &grams[1][..grams[1].len() - PintReport::WIRE_LEN - 4];
        assert!(matches!(c.ingest(cut), Err(CodecError::Truncated { .. })));
        assert_eq!(c.reports().len(), 3, "partial decode fully rolled back");
        assert_eq!(
            c.reconstructed() + c.sketch_misses(),
            recon,
            "rolled-back reports never reach the sketch"
        );
        // The collector keeps working afterwards.
        c.ingest(&grams[1]).unwrap();
        assert_eq!(c.reports().len(), 6);
    }

    #[test]
    fn clear_reports_keeps_allocation_and_sketch() {
        let q = PintReport {
            field: PintField::QueueOccupancy,
            digest: 6,
            ..digest(0)
        };
        let lat = PintReport {
            field: PintField::HopLatency,
            export_ns: q.export_ns + 10,
            ..q
        };
        let mut c = PintCollector::default();
        c.ingest(&batch_into_datagrams([1, 1, 1, 1].into(), &[q], 10)[0])
            .unwrap();
        c.clear_reports();
        assert!(c.reports().is_empty());
        // Sketch state survives the drain: the next datagram's latency
        // digest still reconstructs.
        c.ingest(&batch_into_datagrams([1, 1, 1, 1].into(), &[lat], 10)[0])
            .unwrap();
        assert_eq!(c.reports()[0].queue_occupancy, Some(6));
    }

    #[test]
    fn empty_datagram_is_legal() {
        let d = PintDatagram {
            agent: Ipv4Addr::new(1, 1, 1, 1),
            sequence: 0,
            reports: vec![],
        };
        let mut cursor = d.encode_to_bytes().freeze();
        assert_eq!(PintDatagram::decode(&mut cursor).unwrap().reports.len(), 0);
    }

    #[test]
    fn forged_count_rejected_as_truncated() {
        let d = PintDatagram {
            agent: Ipv4Addr::new(1, 1, 1, 1),
            sequence: 0,
            reports: (0..2).map(digest).collect(),
        };
        let mut bytes = d.encode_to_bytes();
        bytes[10] = 0xff; // count claims 65282+ reports
        bytes[11] = 0x02;
        let mut c = PintCollector::default();
        assert!(matches!(
            c.ingest(&bytes),
            Err(CodecError::Truncated { .. })
        ));
        assert!(c.reports().is_empty());
    }
}
