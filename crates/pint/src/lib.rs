//! PINT-style probabilistic telemetry — the middle of the
//! overhead-recall frontier between full INT and 1-in-N sFlow.
//!
//! Modeled on PINT (Ben Basat et al., "PINT: Probabilistic In-band
//! Network Telemetry"): instead of every hop's full metadata on every
//! packet (INT) or full headers on 1-in-4096 packets (sFlow), **every**
//! packet carries a fixed `k`-bit digest. The switch side
//! ([`PintEncoder`]) hash-samples one (hop, field) choice per packet and
//! quantizes its value into the budget; the collector side
//! ([`PintSketch`] inside [`PintCollector`]) folds the digest stream
//! back into per-flow hop aggregates with **bounded staleness** — old
//! reconstructions expire instead of being served forever.
//!
//! The crate mirrors its siblings `amlight-int` and `amlight-sflow`:
//! same zero-alloc rollback decode discipline, same saturating-count
//! datagram framing, same collector counters — it is backend N+1 proving
//! the registry holds.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod datagram;
pub mod report;
pub mod sketch;

pub use datagram::{batch_into_datagrams, PintCollector, PintDatagram, DATAGRAM_MAGIC};
pub use report::{
    dequantize, quantize, PintEncoder, PintField, PintReport, MAX_DIGEST_BITS, MIN_DIGEST_BITS,
};
pub use sketch::{PintSketch, SketchConfig};
