//! PINT digest reports: what a k-bit per-packet budget can carry.
//!
//! Full INT exports every hop's metadata on every packet; sFlow exports
//! full headers for 1-in-N packets. PINT (Ben Basat et al.) sits between
//! them: **every** packet carries telemetry, but only `k` bits of it — a
//! hash-sampled (hop, field) choice quantized into the budget. The
//! collector-side sketch ([`crate::sketch::PintSketch`]) reassembles
//! per-flow aggregates from the stream of digests.

use amlight_net::flow::FnvBuildHasher;
use amlight_net::{CodecError, Decode, Encode, FlowKey};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// Smallest supported per-packet digest budget, bits.
pub const MIN_DIGEST_BITS: u8 = 5;

/// Largest supported per-packet digest budget, bits (the digest field is
/// a `u16` on the wire).
pub const MAX_DIGEST_BITS: u8 = 16;

/// Exponent width of the quantizer: a digest spends 5 bits on the
/// exponent and the remaining `k - 5` on the mantissa.
const EXP_BITS: u8 = 5;

/// Which hop-metadata field a digest sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PintField {
    /// Queue depth at dequeue (`deq_qdepth`) — feeds the queue columns.
    QueueOccupancy,
    /// Per-hop latency (egress − ingress), ns.
    HopLatency,
}

impl PintField {
    pub fn wire(self) -> u8 {
        match self {
            PintField::QueueOccupancy => 0,
            PintField::HopLatency => 1,
        }
    }

    pub fn from_wire(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(PintField::QueueOccupancy),
            1 => Some(PintField::HopLatency),
            _ => None,
        }
    }
}

/// Quantize a full-width value into a `bits`-wide digest: 5 exponent
/// bits, `bits - 5` mantissa bits (a tiny float with no sign and no
/// fraction). Deterministic, integer-only, and monotone: the decoded
/// value never exceeds the input ([`dequantize`]` ∘ `[`quantize`]` ≤ id`)
/// and the relative error shrinks as the budget grows.
// amlint: hot
pub fn quantize(value: u32, bits: u8) -> u16 {
    let bits = bits.clamp(MIN_DIGEST_BITS, MAX_DIGEST_BITS);
    let mb = u32::from(bits - EXP_BITS);
    if u64::from(value) < (1u64 << mb) {
        // Exact region: exponent 0, the mantissa is the value.
        return value as u16;
    }
    let msb = 31 - value.leading_zeros();
    let shift = msb - mb;
    let e = shift + 1;
    if e > 31 {
        // Only reachable with a zero-bit mantissa; saturate.
        return (31u16) << mb;
    }
    let mant = ((value >> shift) as u16) & ((1u16 << mb) - 1);
    ((e as u16) << mb) | mant
}

/// Invert [`quantize`]: reconstruct the (under-)estimate the digest
/// encodes. Forged digests whose magnitude overflows `u32` saturate.
// amlint: hot
pub fn dequantize(digest: u16, bits: u8) -> u32 {
    let bits = bits.clamp(MIN_DIGEST_BITS, MAX_DIGEST_BITS);
    let mb = u32::from(bits - EXP_BITS);
    let mant = u64::from(digest) & ((1u64 << mb) - 1);
    let e = u32::from(digest) >> mb;
    if e == 0 {
        return mant as u32;
    }
    let v = ((1u64 << mb) + mant) << (e - 1);
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// One packet's PINT export: the packet's header fields plus a single
/// k-bit digest of one sampled (hop, field) choice.
///
/// `queue_occupancy` is **not** on the wire — it is the sketch's
/// reconstruction ([`crate::sketch::PintSketch::annotate`]), carried here
/// so downstream consumers see one self-describing record per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PintReport {
    pub flow: FlowKey,
    pub ip_len: u16,
    pub tcp_flags: Option<u8>,
    /// Sink export time, full-width ns (collector-side clock).
    pub export_ns: u64,
    /// Which hop the digest sampled (source hop = 0).
    pub hop: u8,
    /// Which field of that hop the digest sampled.
    pub field: PintField,
    /// The quantized value, `bits` wide.
    pub digest: u16,
    /// The bit budget this digest was encoded under.
    pub bits: u8,
    /// Collector-side reconstruction of the flow's queue occupancy
    /// (`None` until the sketch has seen a queue digest for the flow).
    pub queue_occupancy: Option<u32>,
}

impl PintReport {
    /// On-wire size of one report — public so overhead accounting
    /// (bits-per-packet frontiers) can price the PINT backend. Note the
    /// *informational* payload is `bits`, the digest budget; the rest of
    /// the entry is the flow key and framing shared by every backend.
    pub const WIRE_LEN: usize = 13 + 2 + 1 + 8 + 1 + 1 + 1 + 2;

    /// Decoded value of the digest under its own budget.
    pub fn value(&self) -> u32 {
        dequantize(self.digest, self.bits)
    }
}

impl Encode for PintReport {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.flow.to_bytes());
        buf.put_u16(self.ip_len);
        buf.put_u8(self.tcp_flags.map_or(0xff, |f| f & 0x3f));
        buf.put_u64(self.export_ns);
        buf.put_u8(self.hop);
        buf.put_u8(self.field.wire());
        buf.put_u8(self.bits);
        buf.put_u16(self.digest);
    }
}

impl Decode for PintReport {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let mut kb = [0u8; 13];
        buf.copy_to_slice(&mut kb);
        let flow = FlowKey::from_bytes(&kb).ok_or(CodecError::Malformed("bad flow key"))?;
        let ip_len = buf.get_u16();
        let raw = buf.get_u8();
        let tcp_flags = if raw == 0xff { None } else { Some(raw) };
        let export_ns = buf.get_u64();
        let hop = buf.get_u8();
        let field =
            PintField::from_wire(buf.get_u8()).ok_or(CodecError::Malformed("bad PINT field"))?;
        let bits = buf.get_u8();
        if !(MIN_DIGEST_BITS..=MAX_DIGEST_BITS).contains(&bits) {
            return Err(CodecError::Malformed("PINT bit budget out of range"));
        }
        let digest = buf.get_u16();
        if bits < 16 && digest >> bits != 0 {
            return Err(CodecError::Malformed("PINT digest wider than its budget"));
        }
        Ok(Self {
            flow,
            ip_len,
            tcp_flags,
            export_ns,
            hop,
            field,
            digest,
            bits,
            queue_occupancy: None,
        })
    }
}

/// The switch-side encoder: picks one (hop, field) per packet by global
/// hashing and quantizes it into the configured bit budget.
///
/// Selection is a *stateless* hash of `(flow, export_ns)` — the same
/// packet always yields the same choice (replay-deterministic), while
/// consecutive packets of a flow walk a pseudo-random schedule over the
/// path, which is what lets the sketch converge on every hop's fields.
#[derive(Debug, Clone, Default)]
pub struct PintEncoder {
    bits: u8,
    hasher: FnvBuildHasher,
}

impl PintEncoder {
    /// Encoder with a per-packet budget of `bits` (clamped to
    /// [`MIN_DIGEST_BITS`]`..=`[`MAX_DIGEST_BITS`]).
    pub fn new(bits: u8) -> Self {
        Self {
            bits: bits.clamp(MIN_DIGEST_BITS, MAX_DIGEST_BITS),
            hasher: FnvBuildHasher::default(),
        }
    }

    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Digest one packet. `hops` holds `(queue_occupancy, hop_latency)`
    /// per hop, source first; an empty path digests a zero queue depth.
    // amlint: hot
    // amlint: allow(R8) -- hop index is `selector % hops.len()`, in-bounds by construction
    pub fn encode(
        &self,
        flow: FlowKey,
        ip_len: u16,
        tcp_flags: Option<u8>,
        export_ns: u64,
        hops: &[(u32, u32)],
    ) -> PintReport {
        let (hop, field, value) = if hops.is_empty() {
            (0u8, PintField::QueueOccupancy, 0u32)
        } else {
            let pick = self.hasher.hash_one((flow, export_ns)) as usize % (hops.len() * 2);
            let hop = pick / 2;
            let (qocc, lat) = hops[hop];
            match pick % 2 {
                0 => (hop as u8, PintField::QueueOccupancy, qocc),
                _ => (hop as u8, PintField::HopLatency, lat),
            }
        };
        PintReport {
            flow,
            ip_len,
            tcp_flags,
            export_ns,
            hop,
            field,
            digest: quantize(value, self.bits),
            bits: self.bits,
            queue_occupancy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    #[test]
    fn quantize_is_exact_below_mantissa_range() {
        for v in 0..64u32 {
            assert_eq!(dequantize(quantize(v, 11), 11), v, "v={v}");
        }
    }

    #[test]
    fn wider_budgets_reduce_error() {
        let v = 123_456u32;
        let mut last_err = u32::MAX;
        for bits in [5u8, 8, 12, 16] {
            let err = v - dequantize(quantize(v, bits), bits);
            assert!(err <= last_err, "error grew at {bits} bits");
            last_err = err;
        }
        assert_eq!(dequantize(quantize(v, 16), 16) >> 10, v >> 10);
    }

    #[test]
    fn minimum_budget_still_orders_magnitudes() {
        // 5 bits = exponent only: order-of-magnitude resolution.
        let small = dequantize(quantize(10, 5), 5);
        let large = dequantize(quantize(1_000_000, 5), 5);
        assert!(large > small * 100);
    }

    #[test]
    fn encoder_is_deterministic_and_in_budget() {
        let enc = PintEncoder::new(8);
        let hops = [(3u32, 500u32), (7, 800), (1, 300)];
        let a = enc.encode(key(1), 100, Some(0x02), 42, &hops);
        let b = enc.encode(key(1), 100, Some(0x02), 42, &hops);
        assert_eq!(a, b, "same packet, same digest");
        assert_eq!(a.digest >> 8, 0, "digest fits the budget");
        assert!((a.hop as usize) < hops.len());
    }

    #[test]
    fn schedule_covers_hops_and_fields() {
        let enc = PintEncoder::new(8);
        let hops = [(3u32, 500u32), (7, 800)];
        let mut seen = std::collections::HashSet::new();
        for t in 0..200u64 {
            let r = enc.encode(key(1), 100, None, t, &hops);
            seen.insert((r.hop, r.field));
        }
        assert_eq!(seen.len(), 4, "all (hop, field) choices eventually hit");
    }

    #[test]
    fn empty_path_digests_zero() {
        let r = PintEncoder::new(8).encode(key(9), 60, None, 1, &[]);
        assert_eq!(r.value(), 0);
        assert_eq!(r.field, PintField::QueueOccupancy);
    }

    #[test]
    fn report_roundtrip() {
        let r = PintEncoder::new(12).encode(key(7), 1400, Some(0x10), 99, &[(5, 100)]);
        let mut cursor = r.encode_to_bytes().freeze();
        let back = PintReport::decode(&mut cursor).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_forged_bits_and_digest() {
        let r = PintEncoder::new(8).encode(key(7), 100, None, 1, &[(5, 100)]);
        let mut bytes = r.encode_to_bytes();
        let bits_at = PintReport::WIRE_LEN - 3;
        bytes[bits_at] = 40; // budget out of range
        assert!(PintReport::decode(&mut bytes.clone().freeze()).is_err());
        bytes[bits_at] = 5;
        bytes[bits_at + 1] = 0xff; // digest wider than 5 bits
        assert!(PintReport::decode(&mut bytes.freeze()).is_err());
    }

    proptest! {
        #[test]
        fn quantize_never_overestimates(v in any::<u32>(), bits in 5u8..=16) {
            let q = dequantize(quantize(v, bits), bits);
            prop_assert!(q <= v);
            // Relative error bounded by the mantissa resolution (a
            // zero-bit mantissa at 5 bits is exponent-only; `q <= v`
            // above is its whole contract).
            let mb = u32::from(bits - 5);
            if mb >= 1 {
                prop_assert!(u64::from(v) - u64::from(q) <= u64::from(v) >> mb);
            }
        }

        #[test]
        fn digest_always_fits_budget(v in any::<u32>(), bits in 5u8..=16) {
            let d = quantize(v, bits);
            if bits < 16 {
                prop_assert_eq!(d >> bits, 0);
            }
        }

        #[test]
        fn wire_roundtrip_any_report(
            port in 1u16..u16::MAX,
            len in 20u16..1500,
            t in any::<u64>(),
            v in any::<u32>(),
            bits in 5u8..=16,
        ) {
            let enc = PintEncoder::new(bits);
            let r = enc.encode(key(port), len, None, t, &[(v, v / 2)]);
            let mut cursor = r.encode_to_bytes().freeze();
            prop_assert_eq!(PintReport::decode(&mut cursor).unwrap(), r);
        }
    }
}
