//! Collector-side reconstruction sketch.
//!
//! Each PINT digest carries one (hop, field) sample. The sketch folds
//! the stream back into per-flow state: the latest reconstructed queue
//! occupancy per flow, with **bounded staleness** — a reconstruction is
//! only served while it is newer than [`SketchConfig::staleness_ns`], so
//! a flow whose queue digests stopped arriving degrades to "unknown"
//! (imputed like sFlow) instead of serving stale depths forever.

use crate::report::{PintField, PintReport};
use amlight_net::flow::FnvHashMap;
use amlight_net::FlowKey;

/// Sketch sizing and staleness knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Serve a reconstructed value only while it is at most this old.
    pub staleness_ns: u64,
    /// Hard cap on tracked flows; stale-first eviction on pressure.
    pub max_flows: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            // 100 ms: generous against AmLight's µs-scale inter-arrival,
            // tight against the 4+ s epochs drift retraining works in.
            staleness_ns: 100_000_000,
            max_flows: 1 << 16,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    qocc: u32,
    seen_ns: u64,
}

/// Per-flow reconstruction state.
#[derive(Debug, Default)]
pub struct PintSketch {
    cfg: SketchConfig,
    entries: FnvHashMap<FlowKey, Entry>,
    reconstructed: u64,
    misses: u64,
}

impl PintSketch {
    pub fn new(cfg: SketchConfig) -> Self {
        Self {
            cfg,
            // amlint: cold -- constructed once per collector at startup
            entries: FnvHashMap::default(),
            reconstructed: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Digests whose flow had a fresh queue reconstruction available.
    pub fn reconstructed(&self) -> u64 {
        self.reconstructed
    }

    /// Digests served with no fresh queue state (imputed downstream).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fold one digest into the sketch and return the flow's current
    /// queue-occupancy reconstruction, if fresh.
    ///
    /// A queue digest refreshes the flow's state and is its own answer;
    /// any other field consults the state the queue digests left behind.
    // amlint: hot
    pub fn absorb(
        &mut self,
        flow: FlowKey,
        export_ns: u64,
        field: PintField,
        value: u32,
    ) -> Option<u32> {
        match field {
            PintField::QueueOccupancy => {
                if self.entries.len() >= self.cfg.max_flows && !self.entries.contains_key(&flow) {
                    self.evict(export_ns);
                }
                // amlint: cold -- bounded map, amortized at the flow working set
                self.entries.insert(
                    flow,
                    Entry {
                        qocc: value,
                        seen_ns: export_ns,
                    },
                );
                self.reconstructed += 1;
                Some(value)
            }
            PintField::HopLatency => match self.entries.get(&flow) {
                Some(e) if export_ns.saturating_sub(e.seen_ns) <= self.cfg.staleness_ns => {
                    self.reconstructed += 1;
                    Some(e.qocc)
                }
                _ => {
                    self.misses += 1;
                    None
                }
            },
        }
    }

    /// Decode a report's digest, fold it in, and stamp the report with
    /// the reconstruction — the one-call path collectors use.
    // amlint: hot
    pub fn annotate(&mut self, report: &mut PintReport) {
        let value = report.value();
        let recon = self.absorb(report.flow, report.export_ns, report.field, value);
        if report.queue_occupancy.is_none() {
            report.queue_occupancy = recon;
        }
    }

    /// Drop stale entries; if nothing is stale, drop the oldest so
    /// capacity-pressure inserts always make progress.
    // amlint: cold -- eviction runs on capacity pressure, not per-digest
    fn evict(&mut self, now_ns: u64) {
        let deadline = now_ns.saturating_sub(self.cfg.staleness_ns);
        let before = self.entries.len();
        self.entries.retain(|_, e| e.seen_ns >= deadline);
        if self.entries.len() == before && before >= self.cfg.max_flows {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.seen_ns)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        )
    }

    #[test]
    fn queue_digest_is_its_own_reconstruction() {
        let mut s = PintSketch::new(SketchConfig::default());
        assert_eq!(s.absorb(key(1), 10, PintField::QueueOccupancy, 7), Some(7));
        assert_eq!(s.reconstructed(), 1);
    }

    #[test]
    fn latency_digest_reuses_fresh_queue_state() {
        let mut s = PintSketch::new(SketchConfig::default());
        s.absorb(key(1), 10, PintField::QueueOccupancy, 7);
        assert_eq!(s.absorb(key(1), 20, PintField::HopLatency, 999), Some(7));
        assert_eq!(s.reconstructed(), 2);
        assert_eq!(s.misses(), 0);
    }

    #[test]
    fn staleness_bound_expires_reconstructions() {
        let mut s = PintSketch::new(SketchConfig {
            staleness_ns: 1_000,
            max_flows: 16,
        });
        s.absorb(key(1), 10, PintField::QueueOccupancy, 7);
        assert_eq!(s.absorb(key(1), 900, PintField::HopLatency, 0), Some(7));
        assert_eq!(s.absorb(key(1), 2_000, PintField::HopLatency, 0), None);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn unknown_flow_is_a_miss() {
        let mut s = PintSketch::new(SketchConfig::default());
        assert_eq!(s.absorb(key(9), 10, PintField::HopLatency, 5), None);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_and_keeps_progress() {
        let mut s = PintSketch::new(SketchConfig {
            staleness_ns: u64::MAX / 2,
            max_flows: 4,
        });
        for (i, port) in (1u16..=8).enumerate() {
            s.absorb(
                key(port),
                100 * (i as u64 + 1),
                PintField::QueueOccupancy,
                1,
            );
            assert!(s.len() <= 4, "sketch exceeded its flow cap");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn annotate_stamps_the_report() {
        let enc = crate::report::PintEncoder::new(12);
        let mut s = PintSketch::new(SketchConfig::default());
        // Drive until a queue digest lands, then every later report for
        // the flow carries a reconstruction.
        let mut stamped = 0;
        for t in 0..50u64 {
            let mut r = enc.encode(key(3), 100, None, t, &[(9, 500)]);
            s.annotate(&mut r);
            if let Some(q) = r.queue_occupancy {
                stamped += 1;
                assert!(q <= 9, "never over-estimates");
            }
        }
        assert!(stamped > 0, "queue digests eventually reconstruct");
    }
}
