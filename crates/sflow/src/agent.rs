//! The sFlow agent: device-level packet sampling.

use crate::datagram::FlowSample;
use amlight_net::{Packet, TrafficClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// AmLight's production sampling rate: 1 out of every 4,096 packets
/// (paper §IV-B).
pub const AMLIGHT_SAMPLING_RATE: u32 = 4096;

/// How the agent picks packets (paper §II-A.1 describes both families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// Sample every N-th packet exactly (packet-count based, deterministic
    /// phase). `phase` selects which offset within each period fires.
    Deterministic { period: u32, phase: u32 },
    /// Classic sFlow: random skip drawn uniformly so the *expected* rate
    /// is 1-in-N but sample positions are unpredictable.
    RandomSkip { period: u32 },
    /// Time-based: one sample per interval (the first packet seen after
    /// each interval boundary).
    TimeBased { interval_ns: u64 },
}

impl SamplingMode {
    /// AmLight's configuration: random 1-in-4096.
    pub fn amlight() -> Self {
        SamplingMode::RandomSkip {
            period: AMLIGHT_SAMPLING_RATE,
        }
    }
}

/// A sampling agent at one observation point.
///
/// ```
/// use amlight_sflow::{SamplingMode, SflowAgent};
/// use amlight_net::PacketBuilder;
///
/// let pkt = PacketBuilder::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into())
///     .tcp_syn(4242, 80, 1);
/// let mut agent = SflowAgent::new(SamplingMode::Deterministic { period: 4, phase: 0 }, 7);
/// let sampled = (0..100u64).filter(|&t| agent.observe(t, &pkt).is_some()).count();
/// assert_eq!(sampled, 25); // exactly 1-in-4
/// ```
#[derive(Debug, Clone)]
pub struct SflowAgent {
    mode: SamplingMode,
    rng: SmallRng,
    /// Packets remaining until the next sample (count-based modes).
    skip: u32,
    /// Next interval boundary (time-based mode).
    next_deadline_ns: u64,
    observed: u64,
    sampled: u64,
}

impl SflowAgent {
    pub fn new(mode: SamplingMode, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let skip = match mode {
            SamplingMode::Deterministic { period, phase } => phase % period,
            SamplingMode::RandomSkip { period } => rng.random_range(0..period),
            SamplingMode::TimeBased { .. } => 0,
        };
        Self {
            mode,
            rng,
            skip,
            next_deadline_ns: 0,
            observed: 0,
            sampled: 0,
        }
    }

    pub fn amlight(seed: u64) -> Self {
        Self::new(SamplingMode::amlight(), seed)
    }

    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    pub fn observed(&self) -> u64 {
        self.observed
    }

    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Effective sampling rate denominator (for scaling estimates).
    pub fn period(&self) -> Option<u32> {
        match self.mode {
            SamplingMode::Deterministic { period, .. } | SamplingMode::RandomSkip { period } => {
                Some(period)
            }
            SamplingMode::TimeBased { .. } => None,
        }
    }

    /// Offer one packet observation; returns a sample if selected.
    pub fn observe(&mut self, ts_ns: u64, packet: &Packet) -> Option<FlowSample> {
        self.observe_headers(
            ts_ns,
            packet.flow_key(),
            packet.ip_len(),
            packet.tcp_flags().map(|f| f.bits()),
        )
    }

    /// Header-level observation: the sampling decision only needs the
    /// packet count / timestamp, and a [`FlowSample`] only carries header
    /// fields — so streams that never materialize a full [`Packet`]
    /// (e.g. an INT report replay re-observed through sFlow sampling)
    /// can drive the same agent state machine.
    pub fn observe_headers(
        &mut self,
        ts_ns: u64,
        flow: amlight_net::FlowKey,
        ip_len: u16,
        tcp_flags: Option<u8>,
    ) -> Option<FlowSample> {
        self.observed += 1;
        let take = match self.mode {
            SamplingMode::Deterministic { period, .. } => {
                if self.skip == 0 {
                    self.skip = period - 1;
                    true
                } else {
                    self.skip -= 1;
                    false
                }
            }
            SamplingMode::RandomSkip { period } => {
                if self.skip == 0 {
                    self.skip = self.rng.random_range(0..period.max(1) * 2 - 1);
                    true
                } else {
                    self.skip -= 1;
                    false
                }
            }
            SamplingMode::TimeBased { interval_ns } => {
                if ts_ns >= self.next_deadline_ns {
                    // Skip ahead past any empty intervals.
                    let intervals = (ts_ns - self.next_deadline_ns) / interval_ns + 1;
                    self.next_deadline_ns += intervals * interval_ns;
                    true
                } else {
                    false
                }
            }
        };
        if !take {
            return None;
        }
        self.sampled += 1;
        Some(FlowSample {
            flow,
            ip_len,
            tcp_flags,
            observed_ns: ts_ns,
            sampling_period: self.period().unwrap_or(0),
        })
    }

    /// Sample a whole labeled stream; convenience for the experiment
    /// harness. Returns (sample, ground-truth class) pairs.
    pub fn sample_stream<'a, I>(&mut self, stream: I) -> Vec<(FlowSample, TrafficClass)>
    where
        I: IntoIterator<Item = (u64, &'a Packet, TrafficClass)>,
    {
        let mut out = Vec::new();
        for (ts, pkt, class) in stream {
            if let Some(s) = self.observe(ts, pkt) {
                out.push((s, class));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp_syn(1000, 80, 0)
    }

    #[test]
    fn deterministic_samples_exactly_one_in_n() {
        let mut a = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 10,
                phase: 0,
            },
            0,
        );
        let p = pkt();
        let hits: Vec<bool> = (0..100).map(|i| a.observe(i, &p).is_some()).collect();
        assert_eq!(hits.iter().filter(|h| **h).count(), 10);
        assert!(hits[0] && hits[10] && hits[90]);
        assert_eq!(a.observed(), 100);
        assert_eq!(a.sampled(), 10);
    }

    #[test]
    fn deterministic_phase_shifts_selection() {
        let mut a = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 10,
                phase: 3,
            },
            0,
        );
        let p = pkt();
        let first_hit = (0..20).position(|i| a.observe(i, &p).is_some());
        assert_eq!(first_hit, Some(3));
    }

    #[test]
    fn random_skip_hits_expected_rate() {
        let mut a = SflowAgent::new(SamplingMode::RandomSkip { period: 100 }, 7);
        let p = pkt();
        let n = 200_000u64;
        let mut hits = 0u64;
        for i in 0..n {
            if a.observe(i, &p).is_some() {
                hits += 1;
            }
        }
        let expected = n / 100;
        // Within 15% of the nominal 1-in-100.
        assert!(
            (hits as f64 - expected as f64).abs() < expected as f64 * 0.15,
            "hits={hits} expected≈{expected}"
        );
    }

    #[test]
    fn random_skip_is_seed_deterministic() {
        let p = pkt();
        let run = |seed| {
            let mut a = SflowAgent::new(SamplingMode::RandomSkip { period: 50 }, seed);
            (0..1000).filter(|i| a.observe(*i, &p).is_some()).count()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn time_based_takes_one_per_interval() {
        let mut a = SflowAgent::new(SamplingMode::TimeBased { interval_ns: 1000 }, 0);
        let p = pkt();
        // Packets every 100 ns for 5 µs → 50 packets, 5 intervals.
        let hits = (0..50).filter(|i| a.observe(i * 100, &p).is_some()).count();
        assert_eq!(hits, 5);
    }

    #[test]
    fn time_based_skips_empty_intervals() {
        let mut a = SflowAgent::new(SamplingMode::TimeBased { interval_ns: 1000 }, 0);
        let p = pkt();
        assert!(a.observe(0, &p).is_some());
        // Silence for 10 intervals, then a packet: sampled once, not 10×.
        assert!(a.observe(10_500, &p).is_some());
        assert!(a.observe(10_600, &p).is_none());
    }

    #[test]
    fn sample_carries_header_fields_only() {
        let mut a = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 1,
                phase: 0,
            },
            0,
        );
        let s = a.observe(42, &pkt()).unwrap();
        assert_eq!(s.ip_len, 40);
        assert_eq!(s.tcp_flags, Some(0x02));
        assert_eq!(s.observed_ns, 42);
        assert_eq!(s.sampling_period, 1);
        assert_eq!(s.flow.dst_port, 80);
    }

    #[test]
    fn short_burst_can_be_missed_entirely() {
        // A 100-packet burst under 1-in-4096 sampling is usually unseen —
        // the sFlow failure mode the paper's Fig. 5 demonstrates.
        let mut misses = 0;
        for seed in 0..50 {
            let mut a = SflowAgent::amlight(seed);
            let p = pkt();
            let seen = (0..100u64).any(|i| a.observe(i, &p).is_some());
            if !seen {
                misses += 1;
            }
        }
        assert!(
            misses > 40,
            "expected most 100-packet bursts unsampled, missed {misses}/50"
        );
    }

    #[test]
    fn sample_stream_labels_ride_along() {
        let mut a = SflowAgent::new(
            SamplingMode::Deterministic {
                period: 2,
                phase: 0,
            },
            0,
        );
        let p = pkt();
        let stream = vec![
            (0u64, &p, TrafficClass::Benign),
            (1, &p, TrafficClass::SynFlood),
            (2, &p, TrafficClass::SlowLoris),
        ];
        let got = a.sample_stream(stream);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, TrafficClass::Benign);
        assert_eq!(got[1].1, TrafficClass::SlowLoris);
    }

    #[test]
    fn observe_headers_matches_observe() {
        // Same seed, same timestamps: the header-level entry point must
        // drive the sampling state machine identically to observe().
        let p = pkt();
        let mut by_packet = SflowAgent::new(SamplingMode::RandomSkip { period: 8 }, 3);
        let mut by_header = SflowAgent::new(SamplingMode::RandomSkip { period: 8 }, 3);
        for i in 0..500u64 {
            let a = by_packet.observe(i, &p);
            let b = by_header.observe_headers(
                i,
                p.flow_key(),
                p.ip_len(),
                p.tcp_flags().map(|f| f.bits()),
            );
            assert_eq!(a, b, "packet {i}");
        }
        assert_eq!(by_packet.sampled(), by_header.sampled());
    }
}
