//! sFlow-style sampled monitoring — the industry baseline the paper
//! compares INT against.
//!
//! sFlow's defining property for this comparison is **sampling**: in the
//! AmLight deployment it observes 1 out of every 4,096 packets. Short or
//! low-rate attack episodes (SlowLoris!) can fall entirely between
//! samples, which is exactly the failure mode the paper's Fig. 5 shows.
//!
//! Components mirror the sFlow architecture (paper §II-A.1): an
//! [`SflowAgent`] on the switch performs the sampling and batches samples
//! into datagrams; an [`SflowCollector`] receives and decodes them.

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub mod agent;
pub mod counters;
pub mod datagram;

pub use agent::{SamplingMode, SflowAgent, AMLIGHT_SAMPLING_RATE};
pub use counters::{CounterRecord, FlowCounterPoller};
pub use datagram::{batch_into_datagrams, FlowSample, SflowCollector, SflowDatagram};
