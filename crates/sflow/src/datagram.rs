//! sFlow datagrams and the collector that decodes them.

use amlight_net::{CodecError, Decode, Encode, FlowKey};
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One sampled packet, as reported by the agent.
///
/// Compare with `amlight_int::TelemetryReport`: no queue occupancy, no
/// per-switch timestamps — only what the agent sees in the sampled
/// header plus its own observation clock. That asymmetry IS the paper's
/// Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSample {
    pub flow: FlowKey,
    pub ip_len: u16,
    pub tcp_flags: Option<u8>,
    /// Agent observation time, full-width host-clock ns.
    pub observed_ns: u64,
    /// The 1-in-N denominator in force when this sample was taken
    /// (0 for time-based sampling).
    pub sampling_period: u32,
}

impl FlowSample {
    /// On-wire size of one sample — public so overhead accounting
    /// (bits-per-packet frontiers) can price the sFlow backend.
    pub const WIRE_LEN: usize = 13 + 2 + 1 + 8 + 4;
}

impl Encode for FlowSample {
    fn encoded_len(&self) -> usize {
        Self::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.flow.to_bytes());
        buf.put_u16(self.ip_len);
        buf.put_u8(self.tcp_flags.map_or(0xff, |f| f & 0x3f));
        buf.put_u64(self.observed_ns);
        buf.put_u32(self.sampling_period);
    }
}

impl Decode for FlowSample {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        if buf.remaining() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                needed: Self::WIRE_LEN,
                had: buf.remaining(),
            });
        }
        let mut kb = [0u8; 13];
        buf.copy_to_slice(&mut kb);
        let flow = FlowKey::from_bytes(&kb).ok_or(CodecError::Malformed("bad flow key"))?;
        let ip_len = buf.get_u16();
        let raw = buf.get_u8();
        let tcp_flags = if raw == 0xff { None } else { Some(raw) };
        let observed_ns = buf.get_u64();
        let sampling_period = buf.get_u32();
        Ok(Self {
            flow,
            ip_len,
            tcp_flags,
            observed_ns,
            sampling_period,
        })
    }
}

/// Magic tag opening every sFlow datagram on the wire.
pub const DATAGRAM_MAGIC: u16 = 0x5F10;

/// An agent → collector datagram: a batch of samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SflowDatagram {
    pub agent: Ipv4Addr,
    pub sequence: u32,
    pub samples: Vec<FlowSample>,
}

impl Encode for SflowDatagram {
    fn encoded_len(&self) -> usize {
        2 + 4 + 4 + 2 + self.samples.len() * FlowSample::WIRE_LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(DATAGRAM_MAGIC);
        buf.put_slice(&self.agent.octets());
        buf.put_u32(self.sequence);
        // Saturate rather than truncate: 65536 samples `as u16` would
        // alias to a count of 0 — the receiver would accept an "empty"
        // datagram and silently lose every sample. A saturated count
        // over-claims instead, which the decoder rejects as Truncated.
        buf.put_u16(u16::try_from(self.samples.len()).unwrap_or(u16::MAX));
        for s in &self.samples {
            s.encode(buf);
        }
    }
}

impl Decode for SflowDatagram {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, CodecError> {
        const FIXED: usize = 2 + 4 + 4 + 2;
        if buf.remaining() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                had: buf.remaining(),
            });
        }
        if buf.get_u16() != DATAGRAM_MAGIC {
            return Err(CodecError::Malformed("bad sFlow datagram magic"));
        }
        let mut oct = [0u8; 4];
        buf.copy_to_slice(&mut oct);
        let agent = Ipv4Addr::from(oct);
        let sequence = buf.get_u32();
        let count = buf.get_u16() as usize;
        // The count is attacker bytes: pre-size only to what the buffer
        // could actually hold, or a 12-byte header claiming 65535
        // samples reserves ~2 MB before the first decode failure.
        let mut samples = Vec::with_capacity(count.min(buf.remaining() / FlowSample::WIRE_LEN));
        for _ in 0..count {
            samples.push(FlowSample::decode(buf)?);
        }
        Ok(Self {
            agent,
            sequence,
            samples,
        })
    }
}

/// Collector: tracks sequence gaps (lost datagrams) and accumulates
/// samples.
#[derive(Debug, Default)]
pub struct SflowCollector {
    samples: Vec<FlowSample>,
    datagrams: u64,
    lost_datagrams: u64,
    last_seq: Option<u32>,
    decode_errors: u64,
}

impl SflowCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one encoded datagram.
    ///
    /// Samples decode straight into the collector's long-lived buffer —
    /// no intermediate [`SflowDatagram`] (and no per-datagram `Vec`), so
    /// once the buffer has grown to the working-set size, ingest
    /// performs zero heap allocations. A datagram that fails mid-decode
    /// contributes nothing: partially decoded samples are rolled back.
    // amlint: hot
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<usize, CodecError> {
        let mut cursor = bytes;
        match self.decode_into_samples(&mut cursor) {
            Ok((sequence, n)) => {
                if let Some(prev) = self.last_seq {
                    let gap = sequence.wrapping_sub(prev);
                    if gap > 1 {
                        self.lost_datagrams += u64::from(gap - 1);
                    }
                }
                self.last_seq = Some(sequence);
                self.datagrams += 1;
                Ok(n)
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// Decode one datagram's header and append its samples to
    /// `self.samples`; returns (sequence, sample count). All-or-nothing:
    /// on error the buffer is truncated back to its prior length.
    fn decode_into_samples<B: Buf>(&mut self, buf: &mut B) -> Result<(u32, usize), CodecError> {
        const FIXED: usize = 2 + 4 + 4 + 2;
        if buf.remaining() < FIXED {
            return Err(CodecError::Truncated {
                needed: FIXED,
                had: buf.remaining(),
            });
        }
        if buf.get_u16() != DATAGRAM_MAGIC {
            return Err(CodecError::Malformed("bad sFlow datagram magic"));
        }
        let mut oct = [0u8; 4];
        buf.copy_to_slice(&mut oct);
        let sequence = buf.get_u32();
        let count = buf.get_u16() as usize;
        let before = self.samples.len();
        for _ in 0..count {
            match FlowSample::decode(buf) {
                // amlint: cold -- long-lived collector buffer, amortized at working-set size
                Ok(s) => self.samples.push(s),
                Err(e) => {
                    self.samples.truncate(before);
                    return Err(e);
                }
            }
        }
        Ok((sequence, count))
    }

    pub fn samples(&self) -> &[FlowSample] {
        &self.samples
    }

    pub fn take_samples(&mut self) -> Vec<FlowSample> {
        std::mem::take(&mut self.samples)
    }

    /// Drop buffered samples while keeping the backing allocation.
    /// Listener hot loops iterate [`SflowCollector::samples`], copy what
    /// they need, then call this — unlike
    /// [`SflowCollector::take_samples`], which hands the vector away and
    /// forces a fresh allocation on the next datagram.
    pub fn clear_samples(&mut self) {
        self.samples.clear();
    }

    pub fn datagrams(&self) -> u64 {
        self.datagrams
    }

    pub fn lost_datagrams(&self) -> u64 {
        self.lost_datagrams
    }

    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Scale a sampled packet count to an estimate of the true count
    /// (sFlow's standard 1-in-N inflation).
    pub fn estimate_total_packets(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| u64::from(s.sampling_period.max(1)))
            .sum()
    }
}

/// Batch samples into datagrams of at most `max_per_datagram`.
pub fn batch_into_datagrams(
    agent: Ipv4Addr,
    samples: &[FlowSample],
    max_per_datagram: usize,
) -> Vec<BytesMut> {
    samples
        .chunks(max_per_datagram.max(1))
        .enumerate()
        .map(|(i, chunk)| {
            SflowDatagram {
                agent,
                sequence: i as u32,
                samples: chunk.to_vec(),
            }
            .encode_to_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::Protocol;

    fn sample(tag: u32) -> FlowSample {
        FlowSample {
            flow: FlowKey::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                (2000 + tag) as u16,
                443,
                Protocol::Udp,
            ),
            ip_len: 1400,
            tcp_flags: None,
            observed_ns: u64::from(tag) * 7,
            sampling_period: 4096,
        }
    }

    #[test]
    fn sample_roundtrip() {
        let s = sample(3);
        let mut cursor = s.encode_to_bytes().freeze();
        assert_eq!(FlowSample::decode(&mut cursor).unwrap(), s);
    }

    #[test]
    fn datagram_roundtrip() {
        let d = SflowDatagram {
            agent: Ipv4Addr::new(192, 0, 2, 1),
            sequence: 9,
            samples: (0..5).map(sample).collect(),
        };
        let mut cursor = d.encode_to_bytes().freeze();
        assert_eq!(SflowDatagram::decode(&mut cursor).unwrap(), d);
    }

    #[test]
    fn collector_accumulates_and_detects_loss() {
        let agent = Ipv4Addr::new(192, 0, 2, 1);
        let all: Vec<FlowSample> = (0..10).map(sample).collect();
        let grams = batch_into_datagrams(agent, &all, 3); // seqs 0..=3
        let mut c = SflowCollector::new();
        c.ingest(&grams[0]).unwrap();
        c.ingest(&grams[1]).unwrap();
        // Drop gram 2, deliver 3: one lost datagram.
        c.ingest(&grams[3]).unwrap();
        assert_eq!(c.datagrams(), 3);
        assert_eq!(c.lost_datagrams(), 1);
        assert_eq!(c.samples().len(), 3 + 3 + 1);
    }

    #[test]
    fn collector_counts_decode_errors() {
        let mut c = SflowCollector::new();
        assert!(c.ingest(&[0u8; 4]).is_err());
        assert_eq!(c.decode_errors(), 1);
        assert!(c
            .ingest(&[0xde, 0xad, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
            .is_err());
        assert_eq!(c.decode_errors(), 2);
    }

    #[test]
    fn mid_datagram_error_rolls_back_partial_samples() {
        let agent = Ipv4Addr::new(192, 0, 2, 1);
        let all: Vec<FlowSample> = (0..6).map(sample).collect();
        let grams = batch_into_datagrams(agent, &all, 3);
        let mut c = SflowCollector::new();
        c.ingest(&grams[0]).unwrap();
        // Truncate the second datagram inside its 2nd sample: the first
        // sample decodes fine but must not survive the failed ingest.
        let cut = &grams[1][..grams[1].len() - FlowSample::WIRE_LEN - 4];
        assert!(matches!(c.ingest(cut), Err(CodecError::Truncated { .. })));
        assert_eq!(c.samples().len(), 3, "partial decode fully rolled back");
        assert_eq!(c.decode_errors(), 1);
        // The collector keeps working afterwards.
        c.ingest(&grams[1]).unwrap();
        assert_eq!(c.samples().len(), 6);
    }

    #[test]
    fn estimate_inflates_by_period() {
        let mut c = SflowCollector::new();
        let grams = batch_into_datagrams(
            Ipv4Addr::new(1, 1, 1, 1),
            &(0..4).map(sample).collect::<Vec<_>>(),
            10,
        );
        c.ingest(&grams[0]).unwrap();
        assert_eq!(c.estimate_total_packets(), 4 * 4096);
    }

    #[test]
    fn take_samples_drains() {
        let mut c = SflowCollector::new();
        let grams = batch_into_datagrams(Ipv4Addr::new(1, 1, 1, 1), &[sample(0)], 10);
        c.ingest(&grams[0]).unwrap();
        assert_eq!(c.take_samples().len(), 1);
        assert!(c.samples().is_empty());
    }

    #[test]
    fn clear_samples_keeps_the_allocation() {
        let mut c = SflowCollector::new();
        let samples: Vec<_> = (0..8).map(sample).collect();
        let grams = batch_into_datagrams(Ipv4Addr::new(1, 1, 1, 1), &samples, 10);
        c.ingest(&grams[0]).unwrap();
        assert_eq!(c.samples().len(), 8);
        c.clear_samples();
        assert!(c.samples().is_empty());
        // Counters survive the clear; only the buffered samples go.
        assert_eq!(c.datagrams(), 1);
        c.ingest(&grams[0]).unwrap();
        assert_eq!(c.samples().len(), 8);
    }

    #[test]
    fn empty_datagram_is_legal() {
        let d = SflowDatagram {
            agent: Ipv4Addr::new(1, 1, 1, 1),
            sequence: 0,
            samples: vec![],
        };
        let mut cursor = d.encode_to_bytes().freeze();
        assert_eq!(SflowDatagram::decode(&mut cursor).unwrap().samples.len(), 0);
    }
}
