//! Counter-polling baseline: OpenFlow/NetFlow-style periodic flow stats.
//!
//! The paper's related work (its ref \[17\], Aslam et al.) builds DDoS
//! detection on OpenFlow counters, and the paper notes "the number of
//! features that can be derived from this method may be somewhat
//! limited". This module makes that third telemetry style concrete so
//! the limitation can be measured (`repro_baselines`): a poller reads
//! per-flow packet/byte counters every `interval_ns` and emits one
//! record per active flow per interval — no per-packet sizes, no
//! inter-arrival times, no queue depths; only interval deltas.

use amlight_net::flow::FnvHashMap;
use amlight_net::{FlowKey, Packet};
use serde::{Deserialize, Serialize};

/// One flow's counters over one polling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    pub flow: FlowKey,
    /// Interval start, ns.
    pub interval_start_ns: u64,
    /// Packets observed this interval.
    pub packets: u64,
    /// IP bytes observed this interval.
    pub bytes: u64,
    /// Cumulative packets since the flow appeared.
    pub total_packets: u64,
    /// Cumulative bytes since the flow appeared.
    pub total_bytes: u64,
    /// Number of intervals (including this one) the flow has been seen in.
    pub intervals_active: u32,
}

impl CounterRecord {
    /// The feature vector this telemetry style can support — interval
    /// deltas and their cumulative sums. 8 features, vs INT's 15.
    pub fn features(&self, interval_s: f64) -> [f64; 8] {
        let pkts = self.packets as f64;
        let bytes = self.bytes as f64;
        [
            f64::from(self.flow.protocol.number()),
            pkts,
            bytes,
            if pkts > 0.0 { bytes / pkts } else { 0.0 }, // mean pkt size
            pkts / interval_s,                           // pps
            bytes / interval_s,                          // Bps
            self.total_packets as f64,
            f64::from(self.intervals_active),
        ]
    }

    pub const FEATURE_COUNT: usize = 8;
}

#[derive(Debug, Clone, Copy, Default)]
struct FlowCounters {
    interval_packets: u64,
    interval_bytes: u64,
    total_packets: u64,
    total_bytes: u64,
    intervals_active: u32,
    touched_this_interval: bool,
}

/// Periodic flow-counter poller.
#[derive(Debug)]
pub struct FlowCounterPoller {
    interval_ns: u64,
    epoch_start_ns: u64,
    flows: FnvHashMap<FlowKey, FlowCounters>,
    emitted: Vec<CounterRecord>,
}

impl FlowCounterPoller {
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "polling interval must be positive");
        Self {
            interval_ns,
            epoch_start_ns: 0,
            flows: FnvHashMap::default(),
            emitted: Vec::new(),
        }
    }

    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Observe one packet at `ts_ns` (non-decreasing order).
    pub fn observe(&mut self, ts_ns: u64, packet: &Packet) {
        while ts_ns >= self.epoch_start_ns + self.interval_ns {
            self.flush_interval();
            self.epoch_start_ns += self.interval_ns;
        }
        let c = self.flows.entry(packet.flow_key()).or_default();
        c.interval_packets += 1;
        c.interval_bytes += u64::from(packet.ip_len());
        c.total_packets += 1;
        c.total_bytes += u64::from(packet.ip_len());
        if !c.touched_this_interval {
            c.touched_this_interval = true;
            c.intervals_active += 1;
        }
    }

    fn flush_interval(&mut self) {
        let start = self.epoch_start_ns;
        for (flow, c) in self.flows.iter_mut() {
            if c.touched_this_interval {
                // amlint: cold -- per-interval flush into a drained buffer, not per-packet
                self.emitted.push(CounterRecord {
                    flow: *flow,
                    interval_start_ns: start,
                    packets: c.interval_packets,
                    bytes: c.interval_bytes,
                    total_packets: c.total_packets,
                    total_bytes: c.total_bytes,
                    intervals_active: c.intervals_active,
                });
                c.interval_packets = 0;
                c.interval_bytes = 0;
                c.touched_this_interval = false;
            }
        }
    }

    /// Close the current interval and return every record emitted.
    pub fn finish(mut self) -> Vec<CounterRecord> {
        self.flush_interval();
        let mut out = self.emitted;
        out.sort_by_key(|r| (r.interval_start_ns, r.flow.src_port, r.flow.dst_port));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amlight_net::PacketBuilder;
    use std::net::Ipv4Addr;

    fn pkt(src_port: u16, payload: u16) -> Packet {
        PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)).tcp(
            src_port,
            80,
            amlight_net::TcpFlags::ACK,
            0,
            0,
            payload,
        )
    }

    #[test]
    fn one_record_per_flow_per_active_interval() {
        let mut p = FlowCounterPoller::new(1_000_000_000); // 1 s
                                                           // Flow A active in intervals 0 and 2; flow B only in interval 1.
        p.observe(100, &pkt(1, 100));
        p.observe(200, &pkt(1, 100));
        p.observe(1_500_000_000, &pkt(2, 50));
        p.observe(2_500_000_000, &pkt(1, 100));
        let records = p.finish();
        assert_eq!(records.len(), 3);
        let a0 = &records[0];
        assert_eq!(a0.packets, 2);
        assert_eq!(a0.interval_start_ns, 0);
        let b1 = &records[1];
        assert_eq!(b1.flow.src_port, 2);
        let a2 = &records[2];
        assert_eq!(a2.packets, 1);
        assert_eq!(a2.total_packets, 3, "cumulative counters persist");
        assert_eq!(a2.intervals_active, 2);
    }

    #[test]
    fn idle_intervals_emit_nothing() {
        let mut p = FlowCounterPoller::new(1_000_000_000);
        p.observe(0, &pkt(1, 10));
        // 100 silent intervals.
        p.observe(100_000_000_000, &pkt(1, 10));
        let records = p.finish();
        assert_eq!(records.len(), 2, "no empty-interval records");
    }

    #[test]
    fn bytes_accumulate_ip_lengths() {
        let mut p = FlowCounterPoller::new(1_000_000_000);
        p.observe(0, &pkt(1, 100)); // ip_len = 40 + 100
        p.observe(1, &pkt(1, 60));
        let records = p.finish();
        assert_eq!(records[0].bytes, 140 + 100);
    }

    #[test]
    fn features_are_finite_and_dimensioned() {
        let mut p = FlowCounterPoller::new(1_000_000_000);
        p.observe(0, &pkt(1, 100));
        let records = p.finish();
        let f = records[0].features(1.0);
        assert_eq!(f.len(), CounterRecord::FEATURE_COUNT);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[0], 6.0); // TCP
        assert_eq!(f[1], 1.0); // one packet
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        FlowCounterPoller::new(0);
    }
}
