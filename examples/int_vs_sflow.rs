//! INT vs sFlow, head to head — the paper's central comparison, run
//! through the *same* Fig. 2 pipeline.
//!
//! Generates one two-day capture and feeds it to the shared streaming
//! runtime twice: once as per-packet INT reports (capture replay), once
//! through a live sFlow sampling agent walking the identical packet
//! trace (`SflowAgentSource`). Each backend trains a bundle on its own
//! view; labels ride the channels, so both runs report recall straight
//! from the aggregation stage. Look at the SlowLoris row: sFlow usually
//! has a handful of samples (or none) where INT has thousands of
//! reports — and its recall collapses with them (paper Fig. 5).
//!
//! ```sh
//! cargo run --release --example int_vs_sflow
//! ```

use amlight::core::runtime::ThreadedPipeline;
use amlight::core::source::{ReplaySource, SflowAgentSource};
use amlight::core::trainer::{dataset_from_int, dataset_from_sflow};
use amlight::features::FeatureSet;
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::sflow::SamplingMode;
use amlight::traffic::{TrafficMix, TrafficMixConfig};

const PERIOD: u32 = 64;

fn main() {
    // One capture, two observers.
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(10, 7));
    let trace = mix.generate();
    let stats = trace.stats();
    println!(
        "capture: {} packets, {} flows over {:.1} s",
        stats.packets,
        stats.flows,
        stats.duration_ns as f64 / 1e9
    );

    let lab = Testbed::new(TestbedConfig::default());
    let int_view = lab.run_labeled(&trace);

    let mut agent = SflowAgent::new(SamplingMode::RandomSkip { period: PERIOD }, 99);
    let sflow_view = agent.sample_stream(trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));

    println!("\ncoverage per class (INT reports vs sFlow samples, 1-in-{PERIOD}):");
    for class in TrafficClass::ALL {
        let int_n = int_view.iter().filter(|(_, c)| *c == class).count();
        let sf_n = sflow_view.iter().filter(|(_, c)| *c == class).count();
        println!(
            "  {:<10} INT {:>7}   sFlow {:>5}",
            class.name(),
            int_n,
            sf_n
        );
    }

    // Train each backend on its own view of a *different* day...
    let train_trace = TrafficMix::new(TrafficMixConfig::paper_capture(10, 7 ^ 0xBEEF)).generate();
    let int_train = lab.run_labeled(&train_trace);
    let mut train_agent = SflowAgent::new(SamplingMode::RandomSkip { period: PERIOD }, 98);
    let sflow_train =
        train_agent.sample_stream(train_trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));
    let int_bundle = train_bundle(
        &dataset_from_int(&int_train, FeatureSet::Int),
        FeatureSet::Int,
        &TrainerConfig::default(),
    );
    let sflow_bundle = train_bundle(
        &dataset_from_sflow(&sflow_train),
        FeatureSet::Sflow,
        &TrainerConfig::default(),
    );

    // ...then replay the shared capture through the shared pipeline.
    // INT replays its reports; sFlow runs a *live* agent over the raw
    // packet trace inside the collection stage.
    for (name, bundle) in [("INT", int_bundle), ("sFlow", sflow_bundle)] {
        let pipe = ThreadedPipeline::new(bundle).with_shards(2);
        let handle = match name {
            "INT" => pipe.start(ReplaySource::from_labeled(&int_view)),
            _ => pipe.start(SflowAgentSource::new(
                SflowAgent::new(SamplingMode::RandomSkip { period: PERIOD }, 99),
                &trace,
            )),
        };
        let stats = match handle.join() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name} replay aborted: {e}");
                continue;
            }
        };
        println!(
            "\n{name} through the shared pipeline: {} events → {} predictions",
            stats.events_in, stats.predictions
        );
        println!(
            "  recall {:.4} ({} of {} attack updates; {} still pending)  false-alarm rate {:.4}",
            stats.labeled.recall(),
            stats.labeled.attack_hits,
            stats.labeled.attack_updates,
            stats.labeled.attack_pending,
            stats.labeled.false_alarm_rate(),
        );
    }

    println!(
        "\nBoth detectors score well on what they see — but sFlow only sees\n\
         1-in-N packets, so short or low-rate episodes can vanish entirely\n\
         (the paper's Fig. 5 shows exactly this for SlowLoris)."
    );
}
