//! INT vs sFlow, head to head — the paper's central comparison.
//!
//! Generates one two-day capture, observes it with *both* telemetry
//! systems, trains a Random Forest per view, and shows where sampling
//! loses the attack. Look at the SlowLoris row: sFlow usually has a
//! handful of samples (or none) where INT has thousands of reports.
//!
//! ```sh
//! cargo run --release --example int_vs_sflow
//! ```

use amlight::core::trainer::{dataset_from_int, dataset_from_sflow};
use amlight::features::FeatureSet;
use amlight::ml::model::BinaryClassifier;
use amlight::ml::{RandomForest, RandomForestConfig, StandardScaler};
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::sflow::SamplingMode;
use amlight::traffic::{TrafficMix, TrafficMixConfig};

fn main() {
    // One capture, two observers.
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(10, 7));
    let trace = mix.generate();
    let stats = trace.stats();
    println!(
        "capture: {} packets, {} flows over {:.1} s",
        stats.packets,
        stats.flows,
        stats.duration_ns as f64 / 1e9
    );

    let lab = Testbed::new(TestbedConfig::default());
    let int_view = lab.run_labeled(&trace);

    let mut agent = SflowAgent::new(SamplingMode::RandomSkip { period: 64 }, 99);
    let sflow_view = agent.sample_stream(trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));

    println!("\ncoverage per class (INT reports vs sFlow samples):");
    for class in TrafficClass::ALL {
        let int_n = int_view.iter().filter(|(_, c)| *c == class).count();
        let sf_n = sflow_view.iter().filter(|(_, c)| *c == class).count();
        println!(
            "  {:<10} INT {:>7}   sFlow {:>5}",
            class.name(),
            int_n,
            sf_n
        );
    }

    // Train an RF on each view (90:10 split) and compare.
    for (name, raw) in [
        ("INT", dataset_from_int(&int_view, FeatureSet::Int)),
        ("sFlow", dataset_from_sflow(&sflow_view)),
    ] {
        let (train_raw, test_raw) = raw.train_test_split(0.9, 7);
        let mut train = train_raw.clone();
        let scaler = StandardScaler::fit_transform(&mut train);
        let mut test = test_raw;
        scaler.transform(&mut test);
        let rf = RandomForest::fit(&train, &RandomForestConfig::fast(), 7);
        let m = rf.evaluate(&test).metrics();
        println!(
            "\n{name} Random Forest on {} test rows:\n  accuracy {:.4}  recall {:.4}  precision {:.4}  F1 {:.4}",
            test.len(),
            m.accuracy,
            m.recall,
            m.precision,
            m.f1
        );
    }

    println!(
        "\nBoth detectors score well on what they see — but sFlow only sees\n\
         1-in-N packets, so short or low-rate episodes can vanish entirely\n\
         (the paper's Fig. 5 shows exactly this for SlowLoris)."
    );
}
