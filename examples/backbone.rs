//! INT across the intercontinental backbone: per-hop latency
//! decomposition on a simplified AmLight topology (Miami → Fortaleza →
//! São Paulo, with Santiago and Cape Town spurs) — and the place where
//! the 32-bit timestamp limitation actually bites a long-haul network.
//!
//! ```sh
//! cargo run --release --example backbone
//! ```

use amlight::int::IntInstrumenter;
use amlight::net::{PacketBuilder, PacketRecord, Trace, TrafficClass};
use amlight::sim::clock::TelemetryClock;
use amlight::sim::{NetworkSim, Topology};

fn main() {
    let (topo, client, server) = Topology::amlight_backbone();
    println!("topology: {} switches —", topo.switches().len());
    for sw in topo.switches() {
        println!("  {}", sw.name);
    }
    let names: Vec<String> = topo.switches().iter().map(|s| s.name.clone()).collect();

    // A short request burst, Miami → São Paulo.
    let b = PacketBuilder::new(topo.host(client).ip, topo.host(server).ip);
    let trace: Trace = (0..20u64)
        .map(|i| PacketRecord {
            ts_ns: i * 2_000_000,
            packet: b.tcp(40_000, 443, amlight::net::TcpFlags::ACK, i as u32, 0, 400),
            class: TrafficClass::Benign,
        })
        .collect();

    let sim_report = NetworkSim::new(topo).run(&trace);
    let reports = IntInstrumenter::amlight().instrument(&trace, &sim_report);

    // Decompose one packet's journey from its INT metadata stack alone.
    let r = &reports[0];
    println!("\nper-hop decomposition of packet 0 (from INT metadata only):");
    println!(
        "{:<8} {:>16} {:>16} {:>14}",
        "switch", "ingress (32b ns)", "egress (32b ns)", "hop time (µs)"
    );
    for hop in &r.hops {
        println!(
            "{:<8} {:>16} {:>16} {:>14.2}",
            names[hop.switch_id as usize],
            hop.ingress_tstamp,
            hop.egress_tstamp,
            hop.derived_latency_ns() as f64 / 1e3,
        );
    }
    // Inter-switch (propagation) gaps from consecutive stack entries.
    println!("\nlong-haul propagation recovered from consecutive hops:");
    for w in r.hops.windows(2) {
        let gap = TelemetryClock::stamp_delta(w[0].egress_tstamp, w[1].ingress_tstamp);
        println!(
            "  {:>4} → {:<4} {:>10.3} ms",
            names[w[0].switch_id as usize],
            names[w[1].switch_id as usize],
            f64::from(gap) / 1e6,
        );
    }

    let truth = &sim_report.journeys[0];
    let e2e = truth.delivered_ns.unwrap() - truth.hops[0].ingress_ns;
    println!(
        "\nend-to-end (simulator ground truth): {:.3} ms",
        e2e as f64 / 1e6
    );
    println!(
        "\nEach per-hop and per-segment figure is safely below the 4.295 s\n\
         32-bit wrap, so path decomposition works — but summing packets'\n\
         *inter-arrival* gaps across a long capture aliases, which is why\n\
         the paper (§V) keeps a 64-bit collector clock for anything longer\n\
         than a few seconds."
    );
}
