//! Telemetry budgets: thin the INT stream PINT-style and watch what
//! survives — the paper's future-work direction (its refs \[30\], \[31\]),
//! runnable.
//!
//! ```sh
//! cargo run --release --example telemetry_budget
//! ```

use amlight::core::testbed::{Testbed, TestbedConfig};
use amlight::core::trainer::dataset_from_events;
use amlight::features::FeatureSet;
use amlight::int::{BudgetedTelemetry, TelemetryBudget};
use amlight::ml::model::BinaryClassifier;
use amlight::ml::{RandomForest, RandomForestConfig, StandardScaler};
use amlight::traffic::{TrafficMix, TrafficMixConfig};

fn main() {
    // A capture over a 4-hop INT chain, so spatial sampling has hops to
    // drop.
    let lab = Testbed::new(TestbedConfig {
        hops: 4,
        ..Default::default()
    });
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(5, 2024));
    let labeled = lab.run_labeled(&mix.generate());
    println!(
        "capture: {} telemetry reports, 4 hops each\n",
        labeled.len()
    );

    println!(
        "{:<20} {:>10} {:>10} {:>10}",
        "budget", "bytes", "of full", "RF acc"
    );
    for (name, budget) in [
        ("full INT", TelemetryBudget::Full),
        ("PINT p=0.25", TelemetryBudget::Probabilistic { p: 0.25 }),
        ("PINT p=0.05", TelemetryBudget::Probabilistic { p: 0.05 }),
        ("spatial stride=2", TelemetryBudget::Spatial { stride: 2 }),
    ] {
        let mut reducer = BudgetedTelemetry::new(budget, 7);
        let thinned = reducer.apply_stream(&labeled);
        let stats = reducer.stats();

        let raw = dataset_from_events(&thinned, FeatureSet::full());
        let (train_raw, test_raw) = raw.train_test_split(0.9, 5);
        let mut train = train_raw.clone();
        let scaler = StandardScaler::fit_transform(&mut train);
        let mut test = test_raw;
        scaler.transform(&mut test);
        let rf = RandomForest::fit(&train, &RandomForestConfig::fast(), 5);
        let acc = rf.evaluate(&test).accuracy();

        println!(
            "{:<20} {:>10} {:>9.1}% {:>10.4}",
            name,
            stats.carried_bytes,
            stats.cost_fraction() * 100.0,
            acc
        );
    }
    println!(
        "\nDetection barely moves because header-borne fields (five-tuple,\n\
         length) survive any budget: INT's advantage is per-packet\n\
         coverage, and PINT keeps coverage while shedding bytes."
    );
}
