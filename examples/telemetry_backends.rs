//! Every registered telemetry backend, head to head — the paper's
//! central INT-vs-sFlow comparison (Fig. 5), generalized to one code
//! path over [`TelemetryBackend::ALL`].
//!
//! Generates one two-day capture, then for each backend in the
//! registry: derives that backend's view of the identical packet
//! stream (`derive_view`), trains a bundle on its own view of a
//! *different* day, and replays the shared capture through the shared
//! streaming runtime. Labels ride the channels, so every run reports
//! recall straight from the aggregation stage. Look at the SlowLoris
//! row: sFlow usually has a handful of samples (or none) where INT has
//! thousands of reports — and its recall collapses with them — while
//! PINT keeps per-packet coverage at a few bits per packet.
//!
//! Adding a backend to the registry adds a row here; nothing in this
//! file names a concrete backend.
//!
//! ```sh
//! cargo run --release --example telemetry_backends
//! ```

use amlight::core::runtime::ThreadedPipeline;
use amlight::core::source::EventReplaySource;
use amlight::core::trainer::dataset_from_labeled;
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::traffic::{TrafficMix, TrafficMixConfig};

fn main() {
    // One capture, N observers.
    let opts = ViewOptions {
        sample_period: 64,
        pint_bits: 8,
        seed: 99,
    };
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(10, 7));
    let trace = mix.generate();
    let stats = trace.stats();
    println!(
        "capture: {} packets, {} flows over {:.1} s",
        stats.packets,
        stats.flows,
        stats.duration_ns as f64 / 1e9
    );

    let lab = Testbed::new(TestbedConfig::default());
    let labeled = lab.run_labeled(&trace);
    let views: Vec<_> = TelemetryBackend::ALL
        .iter()
        .map(|b| (b, b.derive_view(&labeled, &opts)))
        .collect();

    println!(
        "\ncoverage per class (events per backend; sFlow samples 1-in-{}, PINT digests {} bits):",
        opts.sample_period, opts.pint_bits
    );
    print!("  {:<10}", "class");
    for (b, _) in &views {
        print!(" {:>9}", b.name());
    }
    println!();
    for class in TrafficClass::ALL {
        print!("  {:<10}", class.name());
        for (_, view) in &views {
            let n = view.iter().filter(|e| e.truth == Some(class)).count();
            print!(" {n:>9}");
        }
        println!();
    }

    // Train each backend on its own view of a *different* day...
    let train_trace = TrafficMix::new(TrafficMixConfig::paper_capture(10, 7 ^ 0xBEEF)).generate();
    let train_labeled = lab.run_labeled(&train_trace);

    // ...then replay the shared capture through the shared pipeline.
    for (backend, view) in views {
        let train_view = backend.derive_view(&train_labeled, &opts);
        let bundle = train_bundle(
            &dataset_from_labeled(&train_view, backend.feature_set()),
            backend.feature_set(),
            &TrainerConfig::default(),
        );
        let pipe = ThreadedPipeline::new(bundle).with_shards(2);
        let handle = pipe.start(EventReplaySource::new(view));
        let stats = match handle.join() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{} replay aborted: {e}", backend.name());
                continue;
            }
        };
        println!(
            "\n{} through the shared pipeline ({:.0} bits/packet at 3 hops): \
             {} events → {} predictions",
            backend.name(),
            backend.bits_per_packet(3, &opts),
            stats.events_in,
            stats.predictions
        );
        println!(
            "  recall {:.4} ({} of {} attack updates; {} still pending)  false-alarm rate {:.4}",
            stats.labeled.recall(),
            stats.labeled.attack_hits,
            stats.labeled.attack_updates,
            stats.labeled.attack_pending,
            stats.labeled.false_alarm_rate(),
        );
    }

    println!(
        "\nEvery detector scores well on what it sees — but sFlow only sees\n\
         1-in-N packets, so short or low-rate episodes can vanish entirely\n\
         (the paper's Fig. 5 shows exactly this for SlowLoris), while PINT\n\
         buys per-packet coverage back for a few bits per packet."
    );
}
