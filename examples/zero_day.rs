//! Zero-day detection: train with SlowLoris completely absent, then face
//! it live — the paper's Table IV / §IV-C scenario.
//!
//! ```sh
//! cargo run --release --example zero_day
//! ```

use amlight::core::pipeline::PipelineConfig;
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::FeatureSet;
use amlight::ml::model::BinaryClassifier;
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::traffic::ReplayLibrary;

fn main() {
    let lab = Testbed::new(TestbedConfig::default());

    // Train on benign + scans + flood. SlowLoris is deliberately absent.
    let library = ReplayLibrary::build(1500, 21);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    println!(
        "training on {} rows — classes: benign, SYN scan, UDP scan, SYN flood (NO SlowLoris)",
        raw.len()
    );
    let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default());

    // Individual model generalization on the unseen attack.
    let test_library = ReplayLibrary::build(1500, 1999);
    let unseen = lab.replay_class(&test_library, TrafficClass::SlowLoris);
    let unseen_raw = dataset_from_events(&unseen, FeatureSet::full());
    let mut scaled = unseen_raw.clone();
    bundle.scaler.transform(&mut scaled);
    println!(
        "\nper-model recall on {} zero-day SlowLoris telemetry rows:",
        scaled.len()
    );
    println!("  MLP  {:.4}", bundle.mlp.evaluate(&scaled).recall());
    println!("  RF   {:.4}", bundle.forest.evaluate(&scaled).recall());
    println!("  GNB  {:.4}", bundle.gnb.evaluate(&scaled).recall());

    // The full pipeline: ensemble vote + smoothing window.
    let mut pipeline = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipeline.run_sync(&unseen);
    let s = report.class_summary(TrafficClass::SlowLoris);
    println!(
        "\nautomated pipeline verdicts: accuracy {:.4} ({} predicted, {} misclassified, {} pending)",
        s.accuracy(),
        s.predicted,
        s.misclassified,
        s.pending
    );
    println!(
        "\nThe ensemble + smoothing recovers what single models miss at flow\n\
         starts — the paper reports 97.95 % on the same zero-day setup\n\
         (its Table VI, SlowLoris row)."
    );
}
