//! The 32-bit telemetry timestamp wraparound, demonstrated end to end —
//! the operational pitfall the paper's §V discussion is about.
//!
//! INT carries nanosecond timestamps in 32 bits, so the clock aliases
//! every 2³² ns ≈ 4.295 s. Any flow whose packets are further apart than
//! that gets a *wrong* inter-arrival time, silently. SlowLoris keepalives
//! (~12 s apart) are a perfect victim.
//!
//! ```sh
//! cargo run --release --example timestamp_wraparound
//! ```

use amlight::core::event::Telemetry;
use amlight::features::{FeatureId, FlowTable, FlowTableConfig};
use amlight::int::{HopMetadata, InstructionSet, TelemetryReport};
use amlight::net::{FlowKey, Protocol};
use amlight::sim::clock::{stamp_delta_ns, TelemetryClock, WRAP_PERIOD_NS};
use std::net::Ipv4Addr;

fn report(flow: FlowKey, t_true_ns: u64, len: u16) -> TelemetryReport {
    let stamp = TelemetryClock::truncate(t_true_ns);
    TelemetryReport {
        flow,
        ip_len: len,
        tcp_flags: Some(0x18),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: 1,
            ingress_tstamp: stamp.wrapping_sub(450),
            egress_tstamp: stamp,
            hop_latency: 0,
            queue_occupancy: 0,
        }]
        .into(),
        export_ns: t_true_ns,
    }
}

fn main() {
    println!("32-bit telemetry clock wraps every {WRAP_PERIOD_NS} ns (≈4.295 s)\n");

    // Direct arithmetic: gaps below one wrap survive, gaps above alias.
    for gap_s in [0.5, 2.0, 4.0, 5.0, 12.0] {
        let t0 = 1_000_000u64;
        let t1 = t0 + (gap_s * 1e9) as u64;
        let derived = stamp_delta_ns(TelemetryClock::truncate(t0), TelemetryClock::truncate(t1));
        let ok = derived == t1 - t0;
        println!(
            "true gap {:>5.1} s → derived from 32-bit stamps: {:>12.6} s  {}",
            gap_s,
            derived as f64 / 1e9,
            if ok { "✓" } else { "✗ ALIASED" }
        );
    }

    // The same corruption flowing into flow-level features.
    let flow = FlowKey::new(
        Ipv4Addr::new(198, 18, 10, 2),
        Ipv4Addr::new(10, 0, 0, 2),
        10_001,
        80,
        Protocol::Tcp,
    );
    let mut table = FlowTable::new(FlowTableConfig::default());
    println!("\nSlowLoris-style flow, one 55-byte fragment every 12 s:");
    println!(
        "{:<12} {:>18} {:>18}",
        "packet", "true IAT (s)", "feature IAT (s)"
    );
    let keepalive_ns = 12_000_000_000u64;
    for i in 0..5u64 {
        let t = 1_000_000 + i * keepalive_ns;
        let (_, rec) = table.apply(&report(flow, t, 55).flow_update());
        let truth = if i == 0 {
            0.0
        } else {
            keepalive_ns as f64 / 1e9
        };
        println!(
            "{:<12} {:>18.6} {:>18.6}",
            i + 1,
            truth,
            rec.last_inter_arrival_s
        );
    }
    let rec = table.get(&flow).unwrap();
    let v = rec.features();
    println!(
        "\nflow duration feature (cumulative IAT): {:.3} s — true duration: {:.3} s",
        v.get(FeatureId::InterArrivalCum),
        4.0 * 12.0
    );
    println!(
        "\nEvery 12-second gap aliased to {:.3} s (12 mod 4.295). The paper's §V\n\
         flags exactly this: \"the inter-arrival time derived from INT [is]\n\
         susceptible to errors\" for long time frames. The detection models in\n\
         this reproduction are trained ON the aliased values, so they cope —\n\
         but any absolute-time analysis must keep a 64-bit collector clock.",
        (12.0f64 % 4.294967296)
    );
}
