//! Quickstart: build the paper's testbed, replay a short mixed capture,
//! train the model bundle, and run the automated detection pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use amlight::core::pipeline::PipelineConfig;
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::FeatureSet;
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::traffic::ReplayLibrary;

fn main() {
    // 1. A software testbed: source agent ↔ INT switch ↔ target agent
    //    (the paper's Fig. 6, minus the hardware).
    let lab = Testbed::new(TestbedConfig::default());

    // 2. Replay labeled traffic through the dataplane and collect INT
    //    telemetry. The library holds ~800 packets per flow type here.
    let library = ReplayLibrary::build(800, 42);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class == TrafficClass::SlowLoris {
            continue; // keep SlowLoris as the zero-day attack
        }
        training.extend(lab.replay_class(&library, class));
    }
    println!(
        "collected {} labeled telemetry reports for training",
        training.len()
    );

    // 3. Train the deployable bundle: StandardScaler + MLP + RF + GNB.
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default());
    println!(
        "trained bundle: {} forest trees, MLP hidden layers {:?}",
        bundle.forest.n_trees(),
        bundle.mlp.hidden_sizes()
    );

    // 4. Run the automated detection pipeline over fresh replays —
    //    including the zero-day SlowLoris the models never saw.
    let test_library = ReplayLibrary::build(800, 1337);
    for class in TrafficClass::ALL {
        let labeled = lab.replay_class(&test_library, class);
        let mut pipeline = DetectionPipeline::new(bundle.clone(), PipelineConfig::rust_pace());
        let report = pipeline.run_sync(&labeled);
        let summary = report.class_summary(class);
        println!(
            "{:<10} accuracy {:.4}  ({} predictions, {} pending, avg latency {:.3} ms)",
            class.name(),
            summary.accuracy(),
            summary.predicted,
            summary.pending,
            summary.avg_latency_s * 1e3,
        );
    }
}
