//! Microburst detection from INT queue telemetry — AmLight's first INT
//! application (the paper's ref \[8\]), reimplemented on the simulator.
//!
//! A bottlenecked port carries smooth traffic with two short on-off
//! bursts injected; the detector finds them from per-packet queue-depth
//! telemetry alone.
//!
//! ```sh
//! cargo run --release --example microbursts
//! ```

use amlight::int::microburst::detect_from_reports;
use amlight::int::{IntInstrumenter, MicroburstConfig};
use amlight::net::{PacketBuilder, PacketRecord, Trace, TrafficClass};
use amlight::sim::queue::QueueConfig;
use amlight::sim::topology::LinkParams;
use amlight::sim::{NetworkSim, Topology};
use std::net::Ipv4Addr;

fn main() {
    // 1 Gb/s bottleneck toward the receiver.
    let mut topo = Topology::new();
    let sw = topo.add_switch("edge", Default::default());
    let src = topo.add_host("sender", Ipv4Addr::new(10, 0, 0, 1));
    let dst = topo.add_host("receiver", Ipv4Addr::new(10, 0, 0, 2));
    topo.attach_host(src, sw, LinkParams::default());
    topo.attach_host(
        dst,
        sw,
        LinkParams {
            delay_ns: 2_000,
            queue: QueueConfig {
                rate_bps: 1_000_000_000,
                capacity_pkts: 4096,
            },
        },
    );
    topo.compute_routes();

    // Smooth 1200-byte stream at ~380 Mb/s, plus two 300 µs bursts where
    // the sender dumps packets back-to-back (~2.4 Gb/s instantaneous).
    let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    let mut trace = Trace::new();
    let mut t = 0u64;
    let mut n = 0u64;
    while t < 20_000_000 {
        // 20 ms
        let in_burst = (5_000_000..5_300_000).contains(&t) || (12_000_000..12_300_000).contains(&t);
        let gap = if in_burst { 4_000 } else { 25_000 }; // ns between packets
        trace.push(PacketRecord {
            ts_ns: t,
            packet: b.udp(40_000 + (n % 8) as u16, 9000, 1200),
            class: TrafficClass::Benign,
        });
        t += gap;
        n += 1;
    }
    println!(
        "injected {} packets over 20 ms with two 300 µs bursts",
        trace.len()
    );

    let report = NetworkSim::new(topo).run(&trace);
    let telemetry = IntInstrumenter::amlight().instrument(&trace, &report);
    let peak = telemetry
        .iter()
        .map(|r| r.max_queue_occupancy())
        .max()
        .unwrap_or(0);
    println!(
        "telemetry reports: {}, peak queue depth: {peak}",
        telemetry.len()
    );

    let bursts = detect_from_reports(telemetry.iter(), MicroburstConfig::default());
    println!("\ndetected {} microburst(s):", bursts.len());
    for (i, burst) in bursts.iter().enumerate() {
        println!(
            "  #{:<2} t = {:.3}–{:.3} ms, duration {:>6.1} µs, peak depth {:>4}, {} samples",
            i + 1,
            burst.start_ns as f64 / 1e6,
            burst.end_ns as f64 / 1e6,
            burst.duration_ns() as f64 / 1e3,
            burst.peak_depth,
            burst.samples,
        );
    }
    println!(
        "\nSNMP-rate counters average over seconds and would show ~40% port\n\
         load here; only per-packet telemetry exposes the 300 µs spikes —\n\
         the observation that started AmLight's INT program (paper ref [8])."
    );
}
