//! Live detection: the Fig. 2 modules running as real threads — a
//! channel-fed streaming source fanning out to sharded processors, with
//! wall-clock latency measurement and an explicit start/drain/stop
//! lifecycle.
//!
//! ```sh
//! cargo run --release --example live_detection
//! ```

use amlight::core::runtime::ThreadedPipeline;
use amlight::core::source::ChannelSource;
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::FeatureSet;
use amlight::net::TrafficClass;
use amlight::prelude::*;
use amlight::traffic::ReplayLibrary;

fn main() {
    let lab = Testbed::new(TestbedConfig::default());

    // Offline phase: pre-train the bundle (as the paper does, §IV-C.2).
    let library = ReplayLibrary::build(600, 5);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(&raw, FeatureSet::full(), &TrainerConfig::default());
    println!("bundle trained on {} telemetry rows", raw.len());

    // Online phase: a live producer feeds the collection module through
    // a bounded channel; ingest fans out across 4 processor shards and
    // fans back in at the prediction thread.
    let replay = ReplayLibrary::build(600, 77);
    for class in [
        TrafficClass::Benign,
        TrafficClass::SynFlood,
        TrafficClass::SlowLoris,
    ] {
        let reports: Vec<_> = lab
            .replay_class(&replay, class)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        let pipeline = ThreadedPipeline::new(bundle.clone()).with_shards(4);
        let (tx, source) = ChannelSource::bounded(1024);
        let handle = pipeline.start(source);

        // The producer half of a live deployment: here a thread replaying
        // a capture, in production the INT collector socket loop.
        let feeder = std::thread::spawn(move || {
            let mut sent = 0u64;
            for r in reports {
                if tx.send(r.into()).is_err() {
                    break;
                }
                sent += 1;
            }
            sent // dropping tx ends the stream
        });

        let sent = feeder.join().unwrap_or(0);
        handle.drain(); // everything ingested so far is now in the DB
        let mid_predictions = pipeline.database().prediction_count();
        let stats = match handle.join() {
            Ok(stats) => stats,
            Err(e) => {
                eprintln!("{} replay aborted: {e}", class.name());
                continue;
            }
        };
        println!(
            "\n{} replay → {} reports streamed ({} sent), {} flows across 4 shards, {} predictions ({} at drain)",
            class.name(),
            stats.events_in,
            sent,
            stats.flows_created,
            stats.predictions,
            mid_predictions,
        );
        println!(
            "  verdicts: {} attack / {} normal / {} pending",
            stats.attack_verdicts, stats.normal_verdicts, stats.pending_verdicts
        );
        println!(
            "  wall-clock prediction latency: mean {:.1} µs, max {:.1} µs",
            stats.mean_latency_us, stats.max_latency_us
        );
    }

    println!(
        "\nNote how the Rust pipeline predicts in microseconds where the\n\
         paper's Python/JS prototype took 0.05–103 seconds (its Table VI) —\n\
         the scaling headroom the paper's future-work section asks for."
    );
}
