//! Failure injection and adversarial-input robustness, spanning crates.

use amlight::core::event::Telemetry;
use amlight::core::guard::CountMinSketch;
use amlight::core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight::core::testbed::{Testbed, TestbedConfig};
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::FeatureSet;
use amlight::int::{HopMetadata, InstructionSet, IntCollector, TelemetryReport};
use amlight::ml::MlpConfig;
use amlight::net::{Decode, FlowKey, Packet, Protocol, TrafficClass};
use amlight::sflow::SflowDatagram;
use amlight::traffic::ReplayLibrary;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn sample_report(tag: u32) -> TelemetryReport {
    TelemetryReport {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            (1000 + tag % 10_000) as u16,
            80,
            Protocol::Tcp,
        ),
        ip_len: 40 + (tag % 100) as u16,
        tcp_flags: Some(0x02),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: tag,
            ingress_tstamp: tag.wrapping_mul(997),
            egress_tstamp: tag.wrapping_mul(997).wrapping_add(400),
            hop_latency: 0,
            queue_occupancy: tag % 8,
        }]
        .into(),
        export_ns: u64::from(tag) * 1_000,
    }
}

proptest! {
    /// Arbitrary bytes must never panic the INT collector, and the
    /// collector must never buffer unboundedly on garbage.
    #[test]
    fn int_collector_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut c = IntCollector::new();
        let _ = c.ingest(&bytes);
        // Whatever happened, stats are consistent.
        let s = c.stats();
        prop_assert!(s.bytes_consumed as usize + c.pending_bytes() <= bytes.len() + 64);
    }

    /// A corrupted byte inside a valid stream loses at most a bounded
    /// prefix of reports — the collector resynchronizes.
    #[test]
    fn int_collector_resyncs_after_corruption(
        flip_at in 0usize..500,
        flip_with in 1u8..255,
    ) {
        let reports: Vec<TelemetryReport> = (0..20).map(sample_report).collect();
        let mut stream = IntCollector::encode_stream(&reports);
        let pos = flip_at % stream.len();
        stream[pos] ^= flip_with;

        let mut c = IntCollector::new();
        let decoded = c.ingest(&stream);
        // One flipped byte damages a bounded neighborhood: the worst case
        // is a corrupted hop-count field, which swallows up to
        // 255 × 16 B ≈ 9 reports of following stream as phantom hop
        // metadata before the resync scan realigns. Everything outside
        // that window must survive.
        prop_assert!(decoded.len() >= reports.len() - 10,
            "lost too much: {} of {}", decoded.len(), reports.len());
    }

    /// sFlow datagram decode must never panic on arbitrary bytes.
    #[test]
    fn sflow_decode_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut cursor = &bytes[..];
        let _ = SflowDatagram::decode(&mut cursor);
    }

    /// Packet decode must never panic on arbitrary bytes.
    #[test]
    fn packet_decode_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut cursor = &bytes[..];
        let _ = Packet::decode(&mut cursor);
    }

    /// Count-min estimates never underestimate, under any workload.
    #[test]
    fn count_min_never_underestimates(
        keys in proptest::collection::vec(0u64..64, 1..500),
    ) {
        let mut sketch = CountMinSketch::new(128, 4);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            sketch.increment(k, 1);
            *truth.entry(k).or_insert(0u32) += 1;
        }
        for (&k, &n) in &truth {
            prop_assert!(sketch.estimate(k) >= n);
        }
        prop_assert_eq!(sketch.total() as usize, keys.len());
    }
}

/// Duplicated and slightly out-of-order telemetry must not panic the
/// pipeline or corrupt its accounting.
#[test]
fn pipeline_tolerates_disordered_duplicated_telemetry() {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(300, 5);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 3,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );

    let mut labeled = lab.replay_class(&ReplayLibrary::build(300, 6), TrafficClass::Benign);
    // Duplicate every 10th report (collector-port mirroring glitches) and
    // swap adjacent pairs (reordering in the export path).
    let dups: Vec<_> = labeled.iter().step_by(10).cloned().collect();
    labeled.extend(dups);
    for i in (0..labeled.len() - 1).step_by(7) {
        labeled.swap(i, i + 1);
    }

    let mut pipe = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipe.run_sync(&labeled);
    assert_eq!(report.total_reports as usize, labeled.len());
    assert!(!report.timeline.is_empty());
    // Monotone virtual time: predictions never precede registrations.
    for p in &report.timeline {
        assert!(p.predicted_ns >= p.registered_ns);
    }
}

/// The collector handles a stream chopped at every possible boundary.
#[test]
fn collector_chunking_is_boundary_agnostic() {
    let reports: Vec<TelemetryReport> = (0..5).map(sample_report).collect();
    let stream = IntCollector::encode_stream(&reports);
    for chunk in 1..stream.len().min(64) {
        let mut c = IntCollector::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            decoded.extend(c.ingest(piece));
        }
        assert_eq!(decoded, reports, "chunk size {chunk}");
    }
}

/// Flow-table capacity pressure: a flood of distinct flows must not grow
/// the table beyond its configured bound (plus slack for in-flight keys).
#[test]
fn flow_table_is_bounded_under_flow_explosion() {
    use amlight::features::{FlowTable, FlowTableConfig};
    let mut table = FlowTable::new(FlowTableConfig {
        idle_timeout_ns: 50_000_000,
        max_flows: 1_000,
    });
    for i in 0..50_000u64 {
        let mut r = sample_report(i as u32);
        r.flow.src_port = (i % 40_000) as u16;
        r.flow.src_ip = Ipv4Addr::from((i as u32).wrapping_mul(2654435761));
        r.export_ns = i * 10_000; // 10 µs apart
        table.apply(&r.flow_update());
    }
    assert!(
        table.len() <= 1_001,
        "table must stay bounded, got {}",
        table.len()
    );
    assert!(table.evicted() > 0);
}
