//! Integration: dataplane simulator behaviour under contention, and the
//! queue-occupancy telemetry path into features.

use amlight::int::IntInstrumenter;
use amlight::net::{PacketBuilder, PacketRecord, Trace, TrafficClass};
use amlight::sim::queue::QueueConfig;
use amlight::sim::topology::LinkParams;
use amlight::sim::{NetworkSim, Topology};
use std::net::Ipv4Addr;

/// A constrained topology: a 100 Mb/s bottleneck toward the target.
fn bottleneck_topology() -> Topology {
    let mut t = Topology::new();
    let sw = t.add_switch("bottleneck", Default::default());
    let src = t.add_host("src", Ipv4Addr::new(10, 0, 0, 1));
    let dst = t.add_host("dst", Ipv4Addr::new(10, 0, 0, 2));
    t.attach_host(src, sw, LinkParams::default());
    t.attach_host(
        dst,
        sw,
        LinkParams {
            delay_ns: 2_000,
            queue: QueueConfig {
                rate_bps: 100_000_000,
                capacity_pkts: 256,
            },
        },
    );
    t.compute_routes();
    t
}

fn burst(n: u64, gap_ns: u64, payload: u16) -> Trace {
    let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    (0..n)
        .map(|i| PacketRecord {
            ts_ns: i * gap_ns,
            packet: b.udp(5000 + (i % 4) as u16, 80, payload),
            class: TrafficClass::Benign,
        })
        .collect()
}

#[test]
fn overload_builds_queue_then_drops() {
    let mut sim = NetworkSim::new(bottleneck_topology());
    // 1000-byte packets every 10 µs = ~800 Mb/s into a 100 Mb/s port.
    let report = sim.run(&burst(1_000, 10_000, 1000));
    let max_q = report
        .journeys
        .iter()
        .flat_map(|j| &j.hops)
        .map(|h| h.qdepth)
        .max()
        .unwrap();
    assert!(
        max_q > 100,
        "sustained overload must build queue, got {max_q}"
    );
    assert!(
        !report.drops.is_empty(),
        "256-packet queue must eventually tail-drop"
    );
    assert_eq!(
        report.delivered_count() + report.drops.len(),
        1_000,
        "every packet is either delivered or dropped"
    );
}

#[test]
fn queue_occupancy_flows_into_int_reports() {
    let mut sim = NetworkSim::new(bottleneck_topology());
    let trace = burst(400, 10_000, 1000);
    let report = sim.run(&trace);
    let telemetry = IntInstrumenter::amlight().instrument(&trace, &report);
    // Dropped packets produce no reports.
    assert_eq!(telemetry.len(), report.delivered_count());
    let max_occ = telemetry
        .iter()
        .map(|r| r.max_queue_occupancy())
        .max()
        .unwrap();
    assert!(
        max_occ > 50,
        "INT must carry the congestion signal, got {max_occ}"
    );
}

#[test]
fn light_load_sees_empty_queues() {
    let mut sim = NetworkSim::new(bottleneck_topology());
    // 100-byte packets every 1 ms = ~0.8 Mb/s: far below the bottleneck.
    let report = sim.run(&burst(200, 1_000_000, 100));
    assert!(report.drops.is_empty());
    assert!(report
        .journeys
        .iter()
        .flat_map(|j| &j.hops)
        .all(|h| h.qdepth == 0));
}

#[test]
fn fifo_order_is_preserved_per_flow() {
    let mut sim = NetworkSim::new(bottleneck_topology());
    let trace = burst(500, 5_000, 800);
    let report = sim.run(&trace);
    // Per destination-port flow, delivery order must match send order.
    for port in 5000u16..5004 {
        let deliveries: Vec<(u32, u64)> = report
            .journeys
            .iter()
            .filter(|j| {
                j.delivered_ns.is_some()
                    && trace.records()[j.trace_idx as usize]
                        .packet
                        .flow_key()
                        .src_port
                        == port
            })
            .map(|j| (j.trace_idx, j.delivered_ns.unwrap()))
            .collect();
        for w in deliveries.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1, "FIFO violated for flow {port}");
        }
    }
}

#[test]
fn hop_latency_grows_with_congestion() {
    let mut sim = NetworkSim::new(bottleneck_topology());
    let light = sim.run(&burst(50, 1_000_000, 1000)).mean_latency_ns();
    let mut sim = NetworkSim::new(bottleneck_topology());
    let heavy = sim.run(&burst(500, 10_000, 1000)).mean_latency_ns();
    assert!(
        heavy > light * 5.0,
        "congestion must inflate latency: light {light}, heavy {heavy}"
    );
}
