//! Integration: the streaming threaded runtime — report sources, the
//! start/drain/stop lifecycle, and shard-count invariance of the
//! detection output.

use amlight::core::runtime::ThreadedPipeline;
use amlight::core::source::{ChannelSource, CollectorSource, ReplaySource};
use amlight::core::trainer::{dataset_from_int, train_bundle, ModelBundle, TrainerConfig};
use amlight::features::FeatureSet;
use amlight::int::{IntCollector, TelemetryReport};
use amlight::ml::MlpConfig;
use amlight::net::{FlowKey, Protocol, TrafficClass};
use std::net::Ipv4Addr;

fn report(src: u8, port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
    use amlight::int::{HopMetadata, InstructionSet};
    TelemetryReport {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 9, 0, src),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        ),
        ip_len: len,
        tcp_flags: Some(0x02),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: 0,
            ingress_tstamp: t_ns as u32,
            egress_tstamp: (t_ns as u32).wrapping_add(400),
            hop_latency: 0,
            queue_occupancy: qocc,
        }],
        export_ns: t_ns,
    }
}

/// 12 benign flows at 1 ms cadence + 6 attack flows at 3 µs cadence.
fn capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
    let mut v = Vec::new();
    for i in 0..n as u64 {
        v.push((
            report(1, 1000 + (i % 12) as u16, i * 1_000_000, 800, 0),
            TrafficClass::Benign,
        ));
        v.push((
            report(2, 2000 + (i % 6) as u16, i * 3_000, 40, 20),
            TrafficClass::SynFlood,
        ));
    }
    v.sort_by_key(|(r, _)| r.export_ns);
    v
}

fn bundle() -> ModelBundle {
    let train = capture(200);
    let raw = dataset_from_int(&train, FeatureSet::Int);
    train_bundle(
        &raw,
        FeatureSet::Int,
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 6,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    )
}

/// The tentpole invariant: the number of processor shards is observable
/// only as throughput. Per-flow verdict sequences — and the created-flow
/// count — are bit-identical across 1, 2, and 8 shards, because a flow
/// always routes to the same shard and shard-local processing preserves
/// arrival order.
#[test]
fn shard_count_is_invisible_to_verdicts() {
    let b = bundle();
    let reports: Vec<TelemetryReport> = capture(120).into_iter().map(|(r, _)| r).collect();

    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        let pipe = ThreadedPipeline::new(b.clone()).with_shards(shards);
        let stats = pipe
            .run(reports.clone())
            .expect("no module thread panicked");
        assert_eq!(stats.flows_created, 18, "{shards} shards");
        assert_eq!(
            stats.predictions,
            reports.len() as u64 - 18,
            "{shards} shards"
        );
        let seqs = pipe.database().verdict_sequences();
        match &baseline {
            None => baseline = Some(seqs),
            Some(expected) => {
                assert_eq!(
                    &seqs, expected,
                    "per-flow verdict sequences changed at {shards} shards"
                );
            }
        }
    }
}

/// The streaming acceptance path: a channel-backed source with 2 shards
/// must satisfy the same invariants as the in-memory batch run.
#[test]
fn channel_source_with_shards_processes_everything() {
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let reports: Vec<TelemetryReport> = capture(100).into_iter().map(|(r, _)| r).collect();
    let n = reports.len() as u64;

    let (tx, source) = ChannelSource::bounded(128);
    let handle = pipe.start(source);
    let feeder = std::thread::spawn(move || {
        for r in reports {
            if tx.send(r).is_err() {
                break;
            }
        }
    });
    feeder.join().expect("feeder finished");
    let stats = handle.join().expect("no module thread panicked");

    assert_eq!(stats.reports_in, n);
    assert_eq!(stats.flows_created, 18);
    assert_eq!(stats.predictions, n - 18);
    assert_eq!(
        stats.attack_verdicts + stats.normal_verdicts + stats.pending_verdicts,
        stats.predictions
    );
    assert_eq!(
        pipe.database().predictions().len() as u64,
        stats.predictions
    );
    // Wall-clock stamps are real on the streaming path too.
    for p in pipe.database().predictions() {
        assert!(p.predicted_ns > 0);
    }
}

/// drain() waits for in-flight reports; stop() ends an endless source.
#[test]
fn lifecycle_drain_observes_quiescence_and_stop_ends_run() {
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let (tx, source) = ChannelSource::bounded(128);
    let handle = pipe.start(source);

    let reports: Vec<TelemetryReport> = capture(40).into_iter().map(|(r, _)| r).collect();
    let n = reports.len() as u64;
    for r in reports {
        tx.send(r).expect("pipeline is live");
    }
    handle.drain();
    // Quiescent: every sent report reached the database (18 creations,
    // the rest predictions).
    assert_eq!(pipe.database().prediction_count() as u64, n - 18);
    assert_eq!(pipe.database().created_count(), 18);

    handle.stop(); // sender is still alive — only stop() ends this run
    let stats = handle.join().expect("no module thread panicked");
    assert_eq!(stats.reports_in, n);
    drop(tx);
}

/// The amlight_int collector adapter: raw sink bytes in, verdicts out —
/// even with the stream shredded into awkward chunk sizes.
#[test]
fn collector_source_feeds_pipeline_from_raw_bytes() {
    let reports: Vec<TelemetryReport> = capture(60).into_iter().map(|(r, _)| r).collect();
    let stream = IntCollector::encode_stream(&reports);
    let n = reports.len() as u64;
    let chunks: Vec<Vec<u8>> = stream.chunks(97).map(<[u8]>::to_vec).collect();
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let stats = pipe
        .start(CollectorSource::new(chunks.into_iter()))
        .join()
        .expect("no module thread panicked");

    assert_eq!(stats.reports_in, n);
    assert_eq!(stats.flows_created, 18);
    assert_eq!(stats.predictions, n - 18);
}

/// ReplaySource restores export order and strips labels, so a labeled
/// capture can drive the threaded runtime directly.
#[test]
fn replay_source_runs_labeled_captures() {
    let labeled = capture(50);
    let n = labeled.len() as u64;
    let pipe = ThreadedPipeline::new(bundle());
    let stats = pipe
        .start(ReplaySource::from_labeled(&labeled))
        .join()
        .expect("no module thread panicked");
    assert_eq!(stats.reports_in, n);
    assert_eq!(stats.flows_created, 18);
}
