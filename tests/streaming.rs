//! Integration: the streaming threaded runtime — telemetry event
//! sources (every registered backend), the start/drain/stop lifecycle,
//! label threading, and shard-count invariance of the detection output.

use amlight::core::event::{pint_view, sample_reports, Telemetry};
use amlight::core::runtime::ThreadedPipeline;
use amlight::core::source::{ChannelSource, CollectorSource, PintReplaySource, ReplaySource};
use amlight::core::trainer::{dataset_from_events, train_bundle, ModelBundle, TrainerConfig};
use amlight::features::{
    FeatureId, FeatureSet, FlowTable, FlowTableConfig, FlowUpdate, UpdateKind,
};
use amlight::int::{IntCollector, TelemetryReport};
use amlight::ml::MlpConfig;
use amlight::net::{FlowKey, Protocol, TrafficClass};
use amlight::pint::{PintField, PintReport};
use amlight::sflow::{FlowSample, SamplingMode, SflowAgent};
use std::net::Ipv4Addr;

fn report(src: u8, port: u16, t_ns: u64, len: u16, qocc: u32) -> TelemetryReport {
    use amlight::int::{HopMetadata, InstructionSet};
    TelemetryReport {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 9, 0, src),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        ),
        ip_len: len,
        tcp_flags: Some(0x02),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: 0,
            ingress_tstamp: t_ns as u32,
            egress_tstamp: (t_ns as u32).wrapping_add(400),
            hop_latency: 0,
            queue_occupancy: qocc,
        }]
        .into(),
        export_ns: t_ns,
    }
}

/// 12 benign flows at 1 ms cadence + 6 attack flows at 3 µs cadence.
fn capture(n: usize) -> Vec<(TelemetryReport, TrafficClass)> {
    let mut v = Vec::new();
    for i in 0..n as u64 {
        v.push((
            report(1, 1000 + (i % 12) as u16, i * 1_000_000, 800, 0),
            TrafficClass::Benign,
        ));
        v.push((
            report(2, 2000 + (i % 6) as u16, i * 3_000, 40, 20),
            TrafficClass::SynFlood,
        ));
    }
    v.sort_by_key(|(r, _)| r.export_ns);
    v
}

fn bundle() -> ModelBundle {
    let train = capture(200);
    let raw = dataset_from_events(&train, FeatureSet::full());
    train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 6,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    )
}

/// The tentpole invariant: the number of processor shards is observable
/// only as throughput. Per-flow verdict sequences — and the created-flow
/// count — are bit-identical across 1, 2, and 8 shards, because a flow
/// always routes to the same shard and shard-local processing preserves
/// arrival order.
#[test]
fn shard_count_is_invisible_to_verdicts() {
    let b = bundle();
    let reports: Vec<TelemetryReport> = capture(120).into_iter().map(|(r, _)| r).collect();

    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        let pipe = ThreadedPipeline::new(b.clone()).with_shards(shards);
        let stats = pipe
            .run(reports.clone())
            .expect("no module thread panicked");
        assert_eq!(stats.flows_created, 18, "{shards} shards");
        assert_eq!(
            stats.predictions,
            reports.len() as u64 - 18,
            "{shards} shards"
        );
        let seqs = pipe.database().verdict_sequences();
        match &baseline {
            None => baseline = Some(seqs),
            Some(expected) => {
                assert_eq!(
                    &seqs, expected,
                    "per-flow verdict sequences changed at {shards} shards"
                );
            }
        }
    }
}

/// Shadow mode never gates: across the whole shard matrix, a
/// `--prefilter shadow` run produces per-flow verdict sequences
/// bit-identical to `--prefilter off` — the scorer runs (and tallies
/// would-be verdicts) without touching what the Predictor sees.
#[test]
fn prefilter_shadow_verdicts_are_bit_identical_to_off_across_shards() {
    use amlight::features::PrefilterMode;
    let b = bundle();
    let reports: Vec<TelemetryReport> = capture(120).into_iter().map(|(r, _)| r).collect();
    let n = reports.len() as u64;

    for shards in [1usize, 2, 8] {
        let off = ThreadedPipeline::new(b.clone()).with_shards(shards);
        let off_stats = off.run(reports.clone()).expect("no module thread panicked");

        let shadow = ThreadedPipeline::new(b.clone())
            .with_shards(shards)
            .with_prefilter(PrefilterMode::Shadow);
        let shadow_stats = shadow
            .run(reports.clone())
            .expect("no module thread panicked");

        assert_eq!(off_stats.predictions, shadow_stats.predictions);
        assert_eq!(
            off.database().verdict_sequences(),
            shadow.database().verdict_sequences(),
            "shadow changed a verdict sequence at {shards} shards"
        );
        // The scorer really ran: every update was graded, nothing gated.
        let t = shadow_stats.triage;
        assert_eq!(t.would.scored, n - 18, "{shards} shards");
        assert_eq!((t.deferred, t.dropped, t.shed), (0, 0, 0));
        assert_eq!(t.forwarded, shadow_stats.predictions);
    }
}

/// The streaming acceptance path: a channel-backed source with 2 shards
/// must satisfy the same invariants as the in-memory batch run.
#[test]
fn channel_source_with_shards_processes_everything() {
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let reports: Vec<TelemetryReport> = capture(100).into_iter().map(|(r, _)| r).collect();
    let n = reports.len() as u64;

    let (tx, source) = ChannelSource::bounded(128);
    let handle = pipe.start(source);
    let feeder = std::thread::spawn(move || {
        for r in reports {
            if tx.send(r.into()).is_err() {
                break;
            }
        }
    });
    feeder.join().expect("feeder finished");
    let stats = handle.join().expect("no module thread panicked");

    assert_eq!(stats.events_in, n);
    assert_eq!(stats.flows_created, 18);
    assert_eq!(stats.predictions, n - 18);
    assert_eq!(
        stats.attack_verdicts + stats.normal_verdicts + stats.pending_verdicts,
        stats.predictions
    );
    assert_eq!(
        pipe.database().predictions().len() as u64,
        stats.predictions
    );
    // Wall-clock stamps are real on the streaming path too.
    for p in pipe.database().predictions() {
        assert!(p.predicted_ns > 0);
    }
}

/// drain() waits for in-flight reports; stop() ends an endless source.
#[test]
fn lifecycle_drain_observes_quiescence_and_stop_ends_run() {
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let (tx, source) = ChannelSource::bounded(128);
    let handle = pipe.start(source);

    let reports: Vec<TelemetryReport> = capture(40).into_iter().map(|(r, _)| r).collect();
    let n = reports.len() as u64;
    for r in reports {
        tx.send(r.into()).expect("pipeline is live");
    }
    handle.drain();
    // Quiescent: every sent report reached the database (18 creations,
    // the rest predictions).
    assert_eq!(pipe.database().prediction_count() as u64, n - 18);
    assert_eq!(pipe.database().created_count(), 18);

    handle.stop(); // sender is still alive — only stop() ends this run
    let stats = handle.join().expect("no module thread panicked");
    assert_eq!(stats.events_in, n);
    drop(tx);
}

/// The amlight_int collector adapter: raw sink bytes in, verdicts out —
/// even with the stream shredded into awkward chunk sizes.
#[test]
fn collector_source_feeds_pipeline_from_raw_bytes() {
    let reports: Vec<TelemetryReport> = capture(60).into_iter().map(|(r, _)| r).collect();
    let stream = IntCollector::encode_stream(&reports);
    let n = reports.len() as u64;
    let chunks: Vec<Vec<u8>> = stream.chunks(97).map(<[u8]>::to_vec).collect();
    let pipe = ThreadedPipeline::new(bundle()).with_shards(2);
    let stats = pipe
        .start(CollectorSource::new(chunks.into_iter()))
        .join()
        .expect("no module thread panicked");

    assert_eq!(stats.events_in, n);
    assert_eq!(stats.flows_created, 18);
    assert_eq!(stats.predictions, n - 18);
}

/// ReplaySource restores export order and threads labels through the
/// channels, so a labeled capture drives the threaded runtime directly
/// *and* the run reports recall without a side-channel lookup.
#[test]
fn replay_source_runs_labeled_captures_and_reports_recall() {
    let labeled = capture(50);
    let n = labeled.len() as u64;
    let pipe = ThreadedPipeline::new(bundle());
    let stats = pipe
        .start(ReplaySource::from_labeled(&labeled))
        .join()
        .expect("no module thread panicked");
    assert_eq!(stats.events_in, n);
    assert_eq!(stats.flows_created, 18);
    // Every prediction came from a labeled event, so the recall tallies
    // must cover all of them — and this trained contrast detects the
    // flood.
    assert_eq!(stats.labeled.labeled_updates(), stats.predictions);
    assert!(stats.labeled.attack_updates > 0);
    // Pending verdicts count against recall, and a 50-update capture
    // spends a visible fraction of each flow inside the warm-up — so the
    // bar is "clearly detecting", not "near-perfect".
    assert!(
        stats.labeled.recall() > 0.6,
        "recall {}",
        stats.labeled.recall()
    );
    assert!(
        stats.labeled.false_alarm_rate() < 0.2,
        "far {}",
        stats.labeled.false_alarm_rate()
    );
}

/// Unlabeled sources (plain report vectors) leave the recall tallies
/// untouched.
#[test]
fn unlabeled_runs_have_empty_recall_tallies() {
    let pipe = ThreadedPipeline::new(bundle());
    let reports: Vec<TelemetryReport> = capture(30).into_iter().map(|(r, _)| r).collect();
    let stats = pipe.run(reports).expect("no module thread panicked");
    assert!(stats.predictions > 0);
    assert_eq!(stats.labeled.labeled_updates(), 0);
}

fn sample(src: u8, port: u16, t_ns: u64, len: u16) -> FlowSample {
    FlowSample {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 9, 0, src),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        ),
        ip_len: len,
        tcp_flags: Some(0x02),
        observed_ns: t_ns,
        sampling_period: 4096,
    }
}

fn pint_report(src: u8, port: u16, t_ns: u64, len: u16) -> PintReport {
    PintReport {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 9, 0, src),
            Ipv4Addr::new(10, 0, 0, 2),
            port,
            80,
            Protocol::Tcp,
        ),
        ip_len: len,
        tcp_flags: Some(0x02),
        export_ns: t_ns,
        hop: 0,
        field: PintField::QueueOccupancy,
        digest: 0,
        bits: 8,
        queue_occupancy: Some(0),
    }
}

/// Satellite invariant: the flow table's housekeeping (creation,
/// budget-driven eviction, idle-timeout eviction) is telemetry-blind.
/// The same (flow, timestamp) stream produces the identical per-step
/// `UpdateKind` sequence and final counters whether it arrives as INT
/// reports, sFlow samples, or PINT digest reports — shared cases swept
/// over table configs, rstest-style.
#[test]
fn three_way_table_housekeeping_parity() {
    let cases = [
        ("default", FlowTableConfig::default()),
        (
            "tight-budget",
            FlowTableConfig {
                max_flows: 4,
                ..FlowTableConfig::default()
            },
        ),
        (
            "short-idle",
            FlowTableConfig {
                idle_timeout_ns: 500_000, // 0.5 ms — benign cadence is 1 ms
                ..FlowTableConfig::default()
            },
        ),
        (
            "tight-and-short",
            FlowTableConfig {
                max_flows: 3,
                idle_timeout_ns: 2_000_000,
            },
        ),
    ];
    // 18 flows, interleaved cadences — enough churn to trip both the
    // budget and the idle timeout in the tight cases.
    let stream: Vec<(u8, u16, u64, u16)> = capture(40)
        .into_iter()
        .map(|(r, _)| {
            (
                r.flow.src_ip.octets()[3],
                r.flow.src_port,
                r.export_ns,
                r.ip_len,
            )
        })
        .collect();

    for (name, cfg) in cases {
        let mut int_table = FlowTable::new(cfg);
        let mut sflow_table = FlowTable::new(cfg);
        let mut pint_table = FlowTable::new(cfg);
        for &(src, port, t_ns, len) in &stream {
            let (int_kind, _) = int_table.apply(&report(src, port, t_ns, len, 0).flow_update());
            let (sflow_kind, _) = sflow_table.apply(&sample(src, port, t_ns, len).flow_update());
            let (pint_kind, _) = pint_table.apply(&pint_report(src, port, t_ns, len).flow_update());
            assert_eq!(int_kind, sflow_kind, "case `{name}` diverged at t={t_ns}");
            assert_eq!(
                int_kind, pint_kind,
                "case `{name}` pint diverged at t={t_ns}"
            );
            assert!(matches!(
                int_kind,
                UpdateKind::Created | UpdateKind::Updated
            ));
        }
        assert_eq!(int_table.len(), sflow_table.len(), "case `{name}` len");
        assert_eq!(int_table.len(), pint_table.len(), "case `{name}` pint len");
        assert_eq!(
            int_table.created(),
            sflow_table.created(),
            "case `{name}` created"
        );
        assert_eq!(
            int_table.created(),
            pint_table.created(),
            "case `{name}` pint created"
        );
        assert_eq!(
            int_table.evicted(),
            sflow_table.evicted(),
            "case `{name}` evicted"
        );
        assert_eq!(
            int_table.evicted(),
            pint_table.evicted(),
            "case `{name}` pint evicted"
        );
        if name == "tight-budget" {
            assert!(int_table.len() <= 4, "budget must bind");
            assert!(int_table.evicted() > 0, "budget case must actually evict");
        }
    }
}

/// The shard-invariance tentpole holds for the sFlow backend too: a
/// sampled stream routed by the same 5-tuple hash produces bit-identical
/// per-flow verdict sequences at 1, 2, and 8 shards.
#[test]
fn sflow_shard_count_is_invisible_to_verdicts() {
    // Derive the sampled view of a labeled INT capture (1-in-4 so the
    // test has enough updates), then train an sFlow-features bundle on
    // half and replay the other half.
    let mut agent = SflowAgent::new(
        SamplingMode::Deterministic {
            period: 4,
            phase: 0,
        },
        9,
    );
    let samples = sample_reports(&capture(400), &mut agent);
    let (train, test) = samples.split_at(samples.len() / 2);
    let raw = dataset_from_events(train, FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS));
    let b = train_bundle(
        &raw,
        FeatureSet::full().without(&FeatureId::QUEUE_COLUMNS),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 6,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    let test_samples: Vec<FlowSample> = test.iter().map(|(s, _)| *s).collect();

    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        let pipe = ThreadedPipeline::new(b.clone()).with_shards(shards);
        let stats = pipe
            .run_samples(test_samples.clone())
            .expect("no module thread panicked");
        assert_eq!(
            stats.events_in,
            test_samples.len() as u64,
            "{shards} shards"
        );
        let seqs = pipe.database().verdict_sequences();
        match &baseline {
            None => baseline = Some(seqs),
            Some(expected) => {
                assert_eq!(
                    &seqs, expected,
                    "sFlow per-flow verdict sequences changed at {shards} shards"
                );
            }
        }
    }
}

/// The shard-invariance tentpole holds for the PINT backend too: the
/// digest-derived view routed by the same 5-tuple hash produces
/// bit-identical per-flow verdict sequences at 1, 2, and 8 shards.
#[test]
fn pint_shard_count_is_invisible_to_verdicts() {
    let view = pint_view(&capture(400), 8);
    let (train, test) = view.split_at(view.len() / 2);
    let b = train_bundle(
        &dataset_from_events(train, FeatureSet::full()),
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 6,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    let test_reports: Vec<PintReport> = test.iter().map(|(r, _)| *r).collect();

    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        let pipe = ThreadedPipeline::new(b.clone()).with_shards(shards);
        let stats = pipe
            .start(PintReplaySource::new(test_reports.clone()))
            .join()
            .expect("no module thread panicked");
        assert_eq!(
            stats.events_in,
            test_reports.len() as u64,
            "{shards} shards"
        );
        let seqs = pipe.database().verdict_sequences();
        match &baseline {
            None => baseline = Some(seqs),
            Some(expected) => {
                assert_eq!(
                    &seqs, expected,
                    "PINT per-flow verdict sequences changed at {shards} shards"
                );
            }
        }
    }
}

/// `apply(FlowUpdate)` is exactly the old backend-specific ingest: the
/// lowering in `Telemetry::flow_update` carries the same fields the
/// removed `update_int`/`update_sflow` entry points consumed (wrapped
/// sink stamp + sink queue depth for INT; full-width agent clock and no
/// queue for sFlow), so records built through `apply` are bit-identical
/// to the direct per-field construction.
#[test]
fn apply_reproduces_backend_specific_ingest_bit_identically() {
    let stream = capture(60);

    let mut via_trait = FlowTable::new(FlowTableConfig::default());
    let mut direct = FlowTable::new(FlowTableConfig::default());
    for (r, _) in &stream {
        let lowered = r.flow_update();
        // The exact lowering `update_int` hardcoded.
        let by_hand = FlowUpdate {
            flow: r.flow,
            now_ns: r.export_ns,
            len: r.ip_len,
            stamp32: r.hops.last().map(|h| h.egress_tstamp),
            observed_ns: None,
            queue_occupancy: r.hops.last().map(|h| h.queue_occupancy),
        };
        assert_eq!(lowered, by_hand, "INT lowering drifted");
        let (k1, rec1) = via_trait.apply(&lowered);
        let (k2, rec2) = direct.apply(&by_hand);
        assert_eq!(k1, k2);
        assert_eq!(rec1.features(), rec2.features());
    }

    let mut agent = SflowAgent::new(
        SamplingMode::Deterministic {
            period: 2,
            phase: 0,
        },
        5,
    );
    let samples = sample_reports(&stream, &mut agent);
    let mut via_trait = FlowTable::new(FlowTableConfig::default());
    let mut direct = FlowTable::new(FlowTableConfig::default());
    for (s, _) in &samples {
        let lowered = s.flow_update();
        // The exact lowering `update_sflow` hardcoded.
        let by_hand = FlowUpdate {
            flow: s.flow,
            now_ns: s.observed_ns,
            len: s.ip_len,
            stamp32: None,
            observed_ns: Some(s.observed_ns),
            queue_occupancy: None,
        };
        assert_eq!(lowered, by_hand, "sFlow lowering drifted");
        let (k1, rec1) = via_trait.apply(&lowered);
        let (k2, rec2) = direct.apply(&by_hand);
        assert_eq!(k1, k2);
        assert_eq!(rec1.features(), rec2.features());
    }
}
