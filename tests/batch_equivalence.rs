//! Batched inference must be *bit-identical* to the single-row path.
//!
//! The columnar `predict_proba_batch` specializations (tree lockstep
//! walks, the MLP's register-tiled matrix-matrix forward, GNB's hoisted
//! normalization terms) are pure layout/throughput changes: every
//! (row, model) probability must carry exactly the same f64 bits as
//! `predict_proba_one` on that row, and the ensemble's batched votes
//! must match `ensemble_vote` decision for decision. These tests pin
//! that contract across awkward batch sizes (empty, one row, lockstep
//! and register-tile remainders) and non-finite feature values, plus a
//! property test over random batches.

use amlight::core::trainer::{train_bundle, TrainerConfig, VoteScratch};
use amlight::features::FeatureSet;
use amlight::ml::model::BinaryClassifier;
use amlight::ml::{
    Dataset, GaussianNb, GbtConfig, GradientBoost, Knn, Mlp, MlpConfig, RandomForest,
    RandomForestConfig,
};
use proptest::prelude::*;

/// Two deterministic interleaved clusters, jittered enough that trees
/// actually split and the MLP trains non-trivially.
fn blobs(n_per_class: usize, n_features: usize) -> Dataset {
    let mut d = Dataset::new(n_features);
    for i in 0..n_per_class {
        let jitter = |k: usize| ((i * 31 + k * 17) % 100) as f64 / 50.0 - 1.0;
        let neg: Vec<f64> = (0..n_features).map(|k| -2.0 + jitter(k)).collect();
        let pos: Vec<f64> = (0..n_features).map(|k| 2.0 + jitter(k + 7)).collect();
        d.push(&neg, false);
        d.push(&pos, true);
    }
    d
}

/// A row-major block of `n` rows cycled out of `d`.
fn block(d: &Dataset, n: usize) -> Vec<f64> {
    let mut rows = Vec::with_capacity(n * d.n_features());
    for i in 0..n {
        rows.extend_from_slice(d.row(i % d.len()));
    }
    rows
}

/// Batch sizes that hit the interesting seams: empty, single row, the
/// 4-row lockstep quads and their remainders, and the MLP's 8-row
/// register tile and its tail.
const SIZES: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 100];

fn assert_bit_identical(model: &dyn BinaryClassifier, d: &Dataset) {
    let nf = d.n_features();
    for &n in SIZES {
        let rows = block(d, n);
        let mut batched = vec![0.0f64; n];
        model.predict_proba_batch(&rows, nf, &mut batched);
        for (r, (row, b)) in rows.chunks_exact(nf).zip(&batched).enumerate() {
            let single = model.predict_proba_one(row);
            assert_eq!(
                single.to_bits(),
                b.to_bits(),
                "{} row {r} of {n}: single {single:?} != batched {b:?}",
                model.name()
            );
        }
    }
}

#[test]
fn random_forest_batch_is_bit_identical() {
    let d = blobs(120, 6);
    let rf = RandomForest::fit(&d, &RandomForestConfig::fast(), 7);
    assert_bit_identical(&rf, &d);
}

#[test]
fn gradient_boost_batch_is_bit_identical() {
    let d = blobs(120, 6);
    let gb = GradientBoost::fit(&d, &GbtConfig::fast(), 7);
    assert_bit_identical(&gb, &d);
}

#[test]
fn gnb_batch_is_bit_identical() {
    let d = blobs(120, 6);
    let gnb = GaussianNb::fit(&d);
    assert_bit_identical(&gnb, &d);
}

#[test]
fn knn_batch_is_bit_identical() {
    let d = blobs(60, 5);
    let knn = Knn::fit(blobs(60, 5), 5);
    assert_bit_identical(&knn, &d);
}

#[test]
fn mlp_batch_is_bit_identical() {
    let d = blobs(100, 6);
    // Hidden widths deliberately not multiples of the 4-unit register
    // tile, so the output-tail path runs too.
    let cfg = MlpConfig {
        hidden: vec![9, 5],
        epochs: 4,
        batch_size: 32,
        ..MlpConfig::default()
    };
    let mlp = Mlp::fit(&d, &cfg, 3);
    assert_bit_identical(&mlp, &d);
}

#[test]
fn paper_shaped_mlp_batch_is_bit_identical() {
    let d = blobs(80, 15);
    let cfg = MlpConfig {
        epochs: 2,
        ..MlpConfig::paper_mlp()
    };
    let mlp = Mlp::fit(&d, &cfg, 3);
    assert_bit_identical(&mlp, &d);
}

#[test]
fn non_finite_features_stay_bit_identical() {
    let d = blobs(80, 5);
    let rf = RandomForest::fit(&d, &RandomForestConfig::fast(), 7);
    let gb = GradientBoost::fit(&d, &GbtConfig::fast(), 7);
    let gnb = GaussianNb::fit(&d);
    let mlp = Mlp::fit(
        &d,
        &MlpConfig {
            hidden: vec![6, 3],
            epochs: 2,
            ..MlpConfig::default()
        },
        3,
    );
    let models: [&dyn BinaryClassifier; 4] = [&rf, &gb, &gnb, &mlp];

    let mut rows = block(&d, 12);
    rows[0] = f64::NAN;
    rows[7] = f64::INFINITY;
    rows[13] = f64::NEG_INFINITY;
    rows[29] = f64::NAN;
    let nf = d.n_features();
    for model in models {
        let mut batched = vec![0.0f64; 12];
        model.predict_proba_batch(&rows, nf, &mut batched);
        for (r, (row, b)) in rows.chunks_exact(nf).zip(&batched).enumerate() {
            let single = model.predict_proba_one(row);
            assert_eq!(
                single.to_bits(),
                b.to_bits(),
                "{} row {r} with non-finite input: {single:?} != {b:?}",
                model.name()
            );
        }
    }
}

#[test]
fn ensemble_votes_batch_matches_per_row_votes() {
    let raw = blobs(100, 15);
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 2,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );
    let nf = raw.n_features();
    let mut scratch = VoteScratch::default();
    let mut out = Vec::new();
    for &n in SIZES {
        let rows = block(&raw, n);
        bundle.votes_batch(&rows, nf, &mut scratch, &mut out);
        assert_eq!(out.len(), n);
        for (r, (row, &got)) in rows.chunks_exact(nf).zip(&out).enumerate() {
            assert_eq!(
                bundle.ensemble_vote(row),
                got,
                "ensemble decision diverged at row {r} of batch {n}"
            );
        }
    }
}

proptest! {
    fn random_batches_are_bit_identical(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 5),
            0..40,
        ),
    ) {
        use std::sync::OnceLock;
        static MODELS: OnceLock<(RandomForest, GradientBoost, GaussianNb, Mlp)> = OnceLock::new();
        let (rf, gb, gnb, mlp) = MODELS.get_or_init(|| {
            let d = blobs(80, 5);
            (
                RandomForest::fit(&d, &RandomForestConfig::fast(), 11),
                GradientBoost::fit(&d, &GbtConfig::fast(), 11),
                GaussianNb::fit(&d),
                Mlp::fit(
                    &d,
                    &MlpConfig {
                        hidden: vec![7, 3],
                        epochs: 2,
                        ..MlpConfig::default()
                    },
                    11,
                ),
            )
        });
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let n = rows.len();
        let models: [&dyn BinaryClassifier; 4] = [rf, gb, gnb, mlp];
        for model in models {
            let mut batched = vec![0.0f64; n];
            model.predict_proba_batch(&flat, 5, &mut batched);
            for (row, b) in rows.iter().zip(&batched) {
                let single = model.predict_proba_one(row);
                prop_assert_eq!(single.to_bits(), b.to_bits());
            }
        }
    }
}
