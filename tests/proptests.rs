//! Property-based tests on the workspace's core data structures and
//! invariants, spanning crates.

use amlight::core::event::Telemetry;
use amlight::core::verdict::{SmoothingWindow, Verdict};
use amlight::features::{FlowTable, FlowTableConfig, StreamingStats};
use amlight::int::{HopMetadata, InstructionSet, TelemetryReport};
use amlight::ml::{ConfusionMatrix, Dataset, StandardScaler};
use amlight::net::{Decode, Encode, FlowKey, Packet, PacketBuilder, Protocol, TcpFlags};
use amlight::sim::clock::TelemetryClock;
use proptest::prelude::*;

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)],
    )
        .prop_map(|(s, d, sp, dp, proto)| FlowKey::new(s.into(), d.into(), sp, dp, proto))
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_flow_key(),
        any::<u16>(),
        0u16..1400,
        any::<u32>(),
        0u8..64,
    )
        .prop_map(|(key, id, payload, seq, flags)| {
            let builder = PacketBuilder::new(key.src_ip, key.dst_ip).identification(id);
            match key.protocol {
                Protocol::Tcp => builder.tcp(
                    key.src_port,
                    key.dst_port,
                    TcpFlags(flags & 0x3f),
                    seq,
                    seq / 2,
                    payload,
                ),
                Protocol::Udp => builder.udp(key.src_port, key.dst_port, payload),
            }
        })
}

proptest! {
    #[test]
    fn flow_key_bytes_roundtrip(key in arb_flow_key()) {
        prop_assert_eq!(FlowKey::from_bytes(&key.to_bytes()), Some(key));
    }

    #[test]
    fn packet_wire_roundtrip(pkt in arb_packet()) {
        let mut cursor = pkt.encode_to_bytes().freeze();
        let back = Packet::decode(&mut cursor).unwrap();
        prop_assert_eq!(back, pkt);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn packet_flow_key_is_reverse_of_reverse(pkt in arb_packet()) {
        let key = pkt.flow_key();
        prop_assert_eq!(key.reversed().reversed(), key);
    }

    #[test]
    fn telemetry_report_roundtrip(
        key in arb_flow_key(),
        len in 20u16..1500,
        hops in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), 0u32..10_000),
            0..8,
        ),
        export in any::<u64>(),
    ) {
        let report = TelemetryReport {
            flow: key,
            ip_len: len,
            tcp_flags: match key.protocol {
                Protocol::Tcp => Some(0x12),
                Protocol::Udp => None,
            },
            instructions: InstructionSet::amlight(),
            hops: hops
                .into_iter()
                .map(|(sw, ing, eg, q)| HopMetadata {
                    switch_id: sw,
                    ingress_tstamp: ing,
                    egress_tstamp: eg,
                    hop_latency: 0,
                    queue_occupancy: q,
                })
                .collect(),
            export_ns: export,
        };
        let mut cursor = report.encode_to_bytes().freeze();
        prop_assert_eq!(TelemetryReport::decode(&mut cursor).unwrap(), report);
    }

    #[test]
    fn welford_matches_two_pass_reference(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert!(s.variance() >= 0.0);
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..100),
        split in 0usize..100,
    ) {
        let cut = split.min(xs.len());
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        for &x in &xs[..cut] { left.push(x); }
        for &x in &xs[cut..] { right.push(x); }
        let mut ab = left;
        ab.merge(&right);
        let mut ba = right;
        ba.merge(&left);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    #[test]
    fn stamp_delta_correct_below_one_wrap(start in any::<u64>(), gap in 0u64..4_294_967_295) {
        let t0 = start;
        let t1 = start.wrapping_add(gap);
        let d = TelemetryClock::stamp_delta(
            TelemetryClock::truncate(t0),
            TelemetryClock::truncate(t1),
        );
        prop_assert_eq!(u64::from(d), gap);
    }

    #[test]
    fn smoothing_window_verdict_matches_majority(
        votes in proptest::collection::vec(any::<bool>(), 1..50),
        window in 1usize..7,
    ) {
        let mut w = SmoothingWindow::new(window);
        let mut last = Verdict::Pending;
        for &v in &votes {
            last = w.push(v);
        }
        if votes.len() < window {
            prop_assert_eq!(last, Verdict::Pending);
        } else {
            let tail = &votes[votes.len() - window..];
            let ones = tail.iter().filter(|&&v| v).count();
            let expect = if ones * 2 > window { Verdict::Attack } else { Verdict::Normal };
            prop_assert_eq!(last, expect);
        }
    }

    #[test]
    fn scaler_transform_then_inverse_is_identity(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e5f64..1e5, 4),
            2..50,
        ),
    ) {
        let mut d = Dataset::new(4);
        for r in &rows {
            d.push(r, false);
        }
        let scaler = StandardScaler::fit(&d);
        for r in &rows {
            let mut x = r.clone();
            scaler.transform_row(&mut x);
            scaler.inverse_transform_row(&mut x);
            for (a, b) in x.iter().zip(r) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn confusion_matrix_metrics_bounded(
        truth in proptest::collection::vec(any::<bool>(), 1..100),
        flips in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let n = truth.len().min(flips.len());
        let pred: Vec<bool> =
            truth[..n].iter().zip(&flips[..n]).map(|(t, f)| t ^ f).collect();
        let m = ConfusionMatrix::from_predictions(&truth[..n], &pred);
        prop_assert_eq!(m.total() as usize, n);
        for v in [m.accuracy(), m.precision(), m.recall(), m.f1()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(m.misclassified() as usize,
            truth[..n].iter().zip(&pred).filter(|(t, p)| t != p).count());
    }

    /// The slab/open-addressing [`FlowTable`] is bit-identical to the
    /// hashmap reference implementation under arbitrary interleavings of
    /// INT ingest, sFlow ingest, and idle eviction. The clock is strictly
    /// increasing so every record's `last_seen_ns` is unique — the
    /// oldest-idle eviction fallback then has one well-defined victim in
    /// both tables, making the comparison exact rather than modulo ties.
    #[test]
    fn slab_flow_table_matches_hashmap_reference(
        ops in proptest::collection::vec(
            (0u8..8, 0u16..12, 40u16..1500, any::<u32>()),
            1..400,
        ),
    ) {
        use amlight::features::reference::HashFlowTable;
        use amlight::sflow::FlowSample;

        let cfg = FlowTableConfig {
            idle_timeout_ns: 50_000,
            max_flows: 8, // below the 12-key universe: eviction fires
        };
        let mut slab = FlowTable::new(cfg);
        let mut reference = HashFlowTable::new(cfg);
        let flow = |port: u16| FlowKey::new(
            [10, 0, 0, 1].into(),
            [10, 0, 0, 2].into(),
            5000 + port,
            443,
            Protocol::Tcp,
        );

        for (i, &(op, k, len, stamp)) in ops.iter().enumerate() {
            let now = (i as u64 + 1) * 10_000;
            match op {
                0..=3 => {
                    let report = TelemetryReport {
                        flow: flow(k),
                        ip_len: len,
                        tcp_flags: Some(0x02),
                        instructions: InstructionSet::amlight(),
                        hops: vec![HopMetadata {
                            switch_id: 1,
                            ingress_tstamp: stamp.wrapping_sub(400),
                            egress_tstamp: stamp,
                            hop_latency: 0,
                            queue_occupancy: stamp % 32,
                        }].into(),
                        export_ns: now,
                    };
                    let (k1, r1) = slab.apply(&report.flow_update());
                    let (f1, seq1, pkts1) = (r1.features(), r1.update_seq, r1.packet_count);
                    let (k2, r2) = reference.apply(&report.flow_update());
                    prop_assert_eq!(k1, k2);
                    prop_assert_eq!(seq1, r2.update_seq);
                    prop_assert_eq!(pkts1, r2.packet_count);
                    prop_assert_eq!(f1, r2.features());
                }
                4..=6 => {
                    let sample = FlowSample {
                        flow: flow(k),
                        ip_len: len,
                        tcp_flags: Some(0x10),
                        observed_ns: now,
                        sampling_period: 4096,
                    };
                    let (k1, r1) = slab.apply(&sample.flow_update());
                    let (f1, seq1) = (r1.features(), r1.update_seq);
                    let (k2, r2) = reference.apply(&sample.flow_update());
                    prop_assert_eq!(k1, k2);
                    prop_assert_eq!(seq1, r2.update_seq);
                    prop_assert_eq!(f1, r2.features());
                }
                _ => {
                    prop_assert_eq!(slab.evict_idle(now), reference.evict_idle(now));
                }
            }
        }

        prop_assert_eq!(slab.len(), reference.len());
        prop_assert_eq!(slab.created(), reference.created());
        prop_assert_eq!(slab.updated(), reference.updated());
        prop_assert_eq!(slab.evicted(), reference.evicted());
        for port in 0..12u16 {
            match (slab.get(&flow(port)), reference.get(&flow(port))) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.features(), b.features());
                    prop_assert_eq!(a.packet_count, b.packet_count);
                    prop_assert_eq!(a.last_seen_ns, b.last_seen_ns);
                }
                (None, None) => {}
                (a, b) => prop_assert!(
                    false,
                    "presence diverged for port {}: slab={} ref={}",
                    port, a.is_some(), b.is_some()
                ),
            }
        }
    }

    #[test]
    fn flow_table_count_conservation(
        keys in proptest::collection::vec(0u16..20, 1..300),
    ) {
        // Ingest a random key sequence; created + updated == total and
        // the table holds exactly the distinct keys.
        let mut table = FlowTable::new(FlowTableConfig::default());
        for (i, &k) in keys.iter().enumerate() {
            let report = TelemetryReport {
                flow: FlowKey::new(
                    [10, 0, 0, 1].into(),
                    [10, 0, 0, 2].into(),
                    1000 + k,
                    80,
                    Protocol::Tcp,
                ),
                ip_len: 40,
                tcp_flags: Some(2),
                instructions: InstructionSet::amlight(),
                hops: vec![HopMetadata::default()].into(),
                export_ns: i as u64,
            };
            table.apply(&report.flow_update());
        }
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(table.len(), distinct.len());
        prop_assert_eq!(table.created() as usize, distinct.len());
        prop_assert_eq!(
            (table.created() + table.updated()) as usize,
            keys.len()
        );
        // Per-flow packet counts sum to the total ingested.
        let total: u64 = table.records().map(|r| r.packet_count).sum();
        prop_assert_eq!(total as usize, keys.len());
    }
}
