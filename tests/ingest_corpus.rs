//! Adversarial wire-input corpus for the ingest decoders: truncated,
//! corrupted, and oversized sFlow datagrams, INT report fragments, and
//! PINT digest datagrams.
//!
//! Two invariants, checked over generated corpora:
//!
//! 1. **No panics.** Whatever arrives off the socket, the decoders
//!    return — the listener threads in `amlight-ingest` run these on
//!    every datagram, and a panic there kills a listener silently.
//! 2. **Every rejection is classified.** Each input ends up in exactly
//!    one counter: accepted (`datagrams` / `reports`) or rejected
//!    (`decode_errors`). Nothing is silently swallowed, so the ingest
//!    server's accounting (`events_decoded + decode_errors`) stays
//!    audit-exact under garbage.

use amlight::int::{HopMetadata, InstructionSet, IntCollector, TelemetryReport};
use amlight::net::{CodecError, Decode, Encode, FlowKey, Protocol};
use amlight::pint::{PintCollector, PintDatagram, PintEncoder, PintReport};
use amlight::sflow::{batch_into_datagrams, FlowSample, SflowCollector, SflowDatagram};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn sample(tag: u32) -> FlowSample {
    FlowSample {
        flow: FlowKey::new(
            Ipv4Addr::new(192, 168, (tag >> 8) as u8, tag as u8),
            Ipv4Addr::new(10, 0, 0, 2),
            (1024 + tag % 40_000) as u16,
            443,
            if tag.is_multiple_of(3) {
                Protocol::Udp
            } else {
                Protocol::Tcp
            },
        ),
        ip_len: 60 + (tag % 1400) as u16,
        tcp_flags: if tag.is_multiple_of(3) {
            None
        } else {
            Some(0x10)
        },
        observed_ns: u64::from(tag) * 1_000,
        sampling_period: 256,
    }
}

fn int_report(tag: u32) -> TelemetryReport {
    TelemetryReport {
        flow: FlowKey::new(
            Ipv4Addr::new(10, 1, (tag >> 8) as u8, tag as u8),
            Ipv4Addr::new(10, 2, 0, 1),
            (2048 + tag % 30_000) as u16,
            80,
            Protocol::Tcp,
        ),
        ip_len: 80 + (tag % 900) as u16,
        tcp_flags: Some(0x18),
        instructions: InstructionSet::amlight(),
        hops: vec![HopMetadata {
            switch_id: tag % 16,
            ingress_tstamp: tag.wrapping_mul(7919),
            egress_tstamp: tag.wrapping_mul(7919).wrapping_add(350),
            hop_latency: 350,
            queue_occupancy: tag % 32,
        }]
        .into(),
        export_ns: u64::from(tag) * 640,
    }
}

fn pint_report(tag: u32) -> PintReport {
    let enc = PintEncoder::new(8);
    enc.encode(
        FlowKey::new(
            Ipv4Addr::new(10, 3, (tag >> 8) as u8, tag as u8),
            Ipv4Addr::new(10, 4, 0, 1),
            (3000 + tag % 20_000) as u16,
            443,
            Protocol::Udp,
        ),
        100 + (tag % 1300) as u16,
        None,
        u64::from(tag) * 710,
        &[(tag % 24, 300 + tag % 900)],
    )
}

/// The mutations the corpus applies to a valid wire image.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mutation {
    /// Leave the bytes alone — the corpus must keep accepting valid
    /// input while rejecting the rest.
    Keep,
    /// Cut the tail off at a fraction of the full length.
    Truncate(u16),
    /// XOR one byte somewhere in the image.
    Flip { at: u16, with: u8 },
    /// Append random-length trailing garbage (an "oversized" frame:
    /// more bytes than the header accounts for).
    Pad(u8),
    /// Replace the whole image with garbage of the same length.
    Garbage(u64),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        Just(Mutation::Keep),
        (any::<u16>()).prop_map(Mutation::Truncate),
        (any::<u16>(), 1u8..=255).prop_map(|(at, with)| Mutation::Flip { at, with }),
        (1u8..=255).prop_map(Mutation::Pad),
        (any::<u64>()).prop_map(Mutation::Garbage),
    ]
}

fn mutate(valid: &[u8], m: Mutation) -> Vec<u8> {
    let mut bytes = valid.to_vec();
    match m {
        Mutation::Keep => {}
        Mutation::Truncate(frac) => {
            let keep = (frac as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        Mutation::Flip { at, with } => {
            let i = (at as usize) % bytes.len().max(1);
            if let Some(b) = bytes.get_mut(i) {
                *b ^= with;
            }
        }
        Mutation::Pad(extra) => {
            let mut x = 0x9e37u16;
            for _ in 0..extra {
                x = x.wrapping_mul(31).wrapping_add(17);
                bytes.push(x as u8);
            }
        }
        Mutation::Garbage(seed) => {
            let mut x = seed | 1;
            for b in bytes.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
        }
    }
    bytes
}

proptest! {
    /// Every sFlow datagram the collector sees — valid, truncated,
    /// corrupted, or oversized — lands in exactly one counter, the
    /// sample buffer only ever grows by whole accepted datagrams, and
    /// nothing panics.
    #[test]
    fn sflow_collector_classifies_every_datagram(
        corpus in proptest::collection::vec((1u8..12, arb_mutation()), 1..24),
    ) {
        let mut collector = SflowCollector::new();
        let mut tag = 1u32;
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for (n_samples, mutation) in corpus {
            let samples: Vec<FlowSample> = (0..n_samples)
                .map(|i| {
                    tag = tag.wrapping_add(u32::from(i) + 1);
                    sample(tag)
                })
                .collect();
            let valid = &batch_into_datagrams(Ipv4Addr::LOCALHOST, &samples, 64)[0];
            let bytes = mutate(valid, mutation);

            let before = collector.samples().len();
            match collector.ingest(&bytes) {
                Ok(n) => {
                    accepted += 1;
                    prop_assert_eq!(collector.samples().len(), before + n);
                }
                Err(_) => {
                    rejected += 1;
                    // All-or-nothing: a failed datagram rolls back.
                    prop_assert_eq!(collector.samples().len(), before);
                }
            }
        }
        prop_assert_eq!(collector.datagrams(), accepted);
        prop_assert_eq!(collector.decode_errors(), rejected);
    }

    /// Pure garbage never panics the sFlow collector and is always
    /// counted as exactly one decode error per attempt.
    #[test]
    fn sflow_collector_counts_garbage(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..4096),
            1..16,
        ),
    ) {
        let mut collector = SflowCollector::new();
        let mut outcomes = 0u64;
        for frame in &frames {
            let _ = collector.ingest(frame);
            outcomes += 1;
        }
        prop_assert_eq!(collector.datagrams() + collector.decode_errors(), outcomes);
    }

    /// Every PINT datagram the collector sees — valid, truncated,
    /// corrupted, or oversized — lands in exactly one counter, the
    /// report buffer only ever grows by whole accepted datagrams (the
    /// mid-decode rollback), and nothing panics.
    #[test]
    fn pint_collector_classifies_every_datagram(
        corpus in proptest::collection::vec((1u8..12, arb_mutation()), 1..24),
    ) {
        let mut collector = PintCollector::default();
        let mut tag = 1u32;
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for (n_reports, mutation) in corpus {
            let reports: Vec<PintReport> = (0..n_reports)
                .map(|i| {
                    tag = tag.wrapping_add(u32::from(i) + 1);
                    pint_report(tag)
                })
                .collect();
            let valid =
                &amlight::pint::batch_into_datagrams(Ipv4Addr::LOCALHOST, &reports, 64)[0];
            let bytes = mutate(valid, mutation);

            let before = collector.reports().len();
            match collector.ingest(&bytes) {
                Ok(n) => {
                    accepted += 1;
                    prop_assert_eq!(collector.reports().len(), before + n);
                }
                Err(_) => {
                    rejected += 1;
                    // All-or-nothing: a failed datagram rolls back.
                    prop_assert_eq!(collector.reports().len(), before);
                }
            }
        }
        prop_assert_eq!(collector.datagrams(), accepted);
        prop_assert_eq!(collector.decode_errors(), rejected);
    }

    /// Pure garbage never panics the PINT collector and is always
    /// counted as exactly one outcome per attempt.
    #[test]
    fn pint_collector_counts_garbage(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..4096),
            1..16,
        ),
    ) {
        let mut collector = PintCollector::default();
        let mut outcomes = 0u64;
        for frame in &frames {
            let _ = collector.ingest(frame);
            outcomes += 1;
        }
        prop_assert_eq!(collector.datagrams() + collector.decode_errors(), outcomes);
    }

    /// Datagram-mode INT decode classifies every non-empty input: at
    /// least one report or one decode error, never a panic, and the
    /// output vector grows by exactly the reported count.
    #[test]
    fn int_datagram_decode_classifies_every_input(
        n_reports in 1usize..8,
        mutation in arb_mutation(),
    ) {
        let reports: Vec<TelemetryReport> =
            (0..n_reports as u32).map(|i| int_report(i * 31 + 7)).collect();
        let valid = IntCollector::encode_stream(&reports);
        let bytes = mutate(&valid, mutation);

        let mut out = Vec::new();
        let outcome = IntCollector::decode_datagram_into(&bytes, &mut out);
        prop_assert_eq!(out.len(), outcome.reports as usize);
        if !bytes.is_empty() {
            prop_assert!(
                outcome.reports + outcome.decode_errors >= 1,
                "unclassified input: {:?} on {} bytes", outcome, bytes.len()
            );
        }
        if mutation == Mutation::Keep {
            prop_assert_eq!(out.len(), n_reports);
            prop_assert_eq!(outcome.decode_errors, 0);
        }
    }

    /// The streaming INT collector survives a corrupted stream split at
    /// arbitrary fragment boundaries (the TCP listener's read pattern),
    /// keeps its byte accounting consistent, and its output matches its
    /// own decoded-report counter.
    #[test]
    fn int_stream_collector_survives_fragmented_corruption(
        mutation in arb_mutation(),
        cut_seed in any::<u64>(),
    ) {
        let reports: Vec<TelemetryReport> =
            (0..12u32).map(|i| int_report(i * 101 + 3)).collect();
        let valid = IntCollector::encode_stream(&reports);
        let bytes = mutate(&valid, mutation);

        let mut collector = IntCollector::new();
        let mut out = Vec::new();
        let mut offset = 0usize;
        let mut x = cut_seed | 1;
        while offset < bytes.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let take = 1 + (x >> 56) as usize % 96;
            let end = (offset + take).min(bytes.len());
            collector.ingest_into(&bytes[offset..end], &mut out);
            offset = end;
        }
        let stats = collector.stats();
        prop_assert_eq!(out.len() as u64, stats.reports_decoded);
        prop_assert!(
            stats.bytes_consumed as usize + collector.pending_bytes() <= bytes.len() + 64,
            "stream accounting drifted: consumed {} + pending {} vs fed {}",
            stats.bytes_consumed, collector.pending_bytes(), bytes.len()
        );
    }
}

// --------------------------------------------------------------------
// Deterministic regressions for the decoder count fields amlint's R9
// (untrusted-cast taint) flagged: each pins the post-fix behavior of a
// length that used to be truncated with `as` on encode or trusted
// unclamped on decode.

/// 256 hops used to encode `as u8`, aliasing the count to 0: the report
/// decoded as silently empty and its hop bytes misparsed as garbage.
/// The encoder now saturates to 255, which trips the decoder's
/// `MAX_REPORT_HOPS` bound — the corruption is detected, not absorbed.
#[test]
fn int_report_overflowing_hop_count_is_rejected_not_emptied() {
    let mut oversized = int_report(1);
    oversized.hops = (0..256u32)
        .map(|i| HopMetadata {
            switch_id: i,
            ..Default::default()
        })
        .collect::<Vec<_>>()
        .into();
    let mut bytes = Vec::new();
    oversized.encode(&mut bytes);
    // Byte 3 is the hop count: saturated, never wrapped to zero.
    assert_eq!(bytes[3], u8::MAX);
    let err = TelemetryReport::decode(&mut &bytes[..]).unwrap_err();
    assert!(matches!(err, CodecError::Malformed(_)), "{err:?}");
    // Datagram mode classifies it as a decode error, yielding nothing.
    let mut out = Vec::new();
    let outcome = IntCollector::decode_datagram_into(&bytes, &mut out);
    assert_eq!(outcome.reports, 0);
    assert!(outcome.decode_errors >= 1);
    assert!(out.is_empty());
}

/// 65536 samples used to encode `as u16`, aliasing the count to 0: the
/// datagram decoded as "empty" and every sample was silently dropped.
/// The saturated count delivers all but the uncounted tail instead.
#[test]
fn sflow_datagram_overflowing_sample_count_is_not_silently_emptied() {
    let samples: Vec<FlowSample> = (0..=u32::from(u16::MAX)).map(sample).collect();
    assert_eq!(samples.len(), usize::from(u16::MAX) + 1);
    let dgram = SflowDatagram {
        agent: Ipv4Addr::LOCALHOST,
        sequence: 7,
        samples,
    };
    let mut bytes = Vec::new();
    dgram.encode(&mut bytes);
    // The count field (bytes 10..12) saturates instead of wrapping.
    assert_eq!(u16::from_be_bytes([bytes[10], bytes[11]]), u16::MAX);
    let mut collector = SflowCollector::new();
    let n = collector
        .ingest(&bytes)
        .expect("saturated datagram still decodes");
    assert_eq!(n, usize::from(u16::MAX));
    assert_eq!(collector.samples().len(), usize::from(u16::MAX));
}

/// A 12-byte header claiming 65535 samples over a one-sample body must
/// fail as `Truncated`: the decoder clamps its pre-allocation to what
/// the buffer can actually hold, so the forged count neither reserves
/// ~2 MB up front nor yields a partially-populated datagram.
#[test]
fn sflow_forged_count_over_tiny_body_is_truncated() {
    let dgram = SflowDatagram {
        agent: Ipv4Addr::LOCALHOST,
        sequence: 1,
        samples: vec![sample(7)],
    };
    let mut bytes = Vec::new();
    dgram.encode(&mut bytes);
    bytes[10..12].copy_from_slice(&u16::MAX.to_be_bytes()); // forge the count
    let err = SflowDatagram::decode(&mut &bytes[..]).unwrap_err();
    assert!(matches!(err, CodecError::Truncated { .. }), "{err:?}");
}

/// The collector path for the same forged-count datagram: counted as
/// one decode error, and the partial decode rolls back completely —
/// samples accepted from earlier datagrams survive untouched.
#[test]
fn sflow_collector_rolls_back_forged_count_datagram() {
    let mut collector = SflowCollector::new();
    let good = batch_into_datagrams(Ipv4Addr::LOCALHOST, &[sample(1), sample(2)], 64);
    collector.ingest(&good[0]).expect("valid datagram");
    assert_eq!(collector.samples().len(), 2);

    let dgram = SflowDatagram {
        agent: Ipv4Addr::LOCALHOST,
        sequence: 9,
        samples: vec![sample(3), sample(4)],
    };
    let mut bytes = Vec::new();
    dgram.encode(&mut bytes);
    bytes[10..12].copy_from_slice(&u16::MAX.to_be_bytes());
    assert!(collector.ingest(&bytes).is_err());
    assert_eq!(collector.samples().len(), 2, "partial decode rolled back");
    assert_eq!(collector.decode_errors(), 1);
}

/// 65536 PINT reports encoded `as u16` would alias the count to 0 and
/// silently drop the whole batch. The saturated count delivers all but
/// the uncounted tail instead — same contract as the sFlow framing.
#[test]
fn pint_datagram_overflowing_report_count_is_not_silently_emptied() {
    let reports: Vec<PintReport> = (0..=u32::from(u16::MAX)).map(pint_report).collect();
    let dgram = PintDatagram {
        agent: Ipv4Addr::LOCALHOST,
        sequence: 3,
        reports,
    };
    let mut bytes = Vec::new();
    dgram.encode(&mut bytes);
    // The count field (bytes 10..12) saturates instead of wrapping.
    assert_eq!(u16::from_be_bytes([bytes[10], bytes[11]]), u16::MAX);
    let mut collector = PintCollector::default();
    let n = collector
        .ingest(&bytes)
        .expect("saturated datagram still decodes");
    assert_eq!(n, usize::from(u16::MAX));
    assert_eq!(collector.reports().len(), usize::from(u16::MAX));
    assert_eq!(collector.decode_errors(), 0);
}

/// A 12-byte PINT header claiming 65535 reports over a two-report body
/// fails as `Truncated`, is counted as one decode error, and rolls back
/// completely — reports accepted from earlier datagrams survive.
#[test]
fn pint_collector_rolls_back_forged_count_datagram() {
    let mut collector = PintCollector::default();
    let good = amlight::pint::batch_into_datagrams(
        Ipv4Addr::LOCALHOST,
        &[pint_report(1), pint_report(2)],
        64,
    );
    collector.ingest(&good[0]).expect("valid datagram");
    assert_eq!(collector.reports().len(), 2);

    let dgram = PintDatagram {
        agent: Ipv4Addr::LOCALHOST,
        sequence: 9,
        reports: vec![pint_report(3), pint_report(4)],
    };
    let mut bytes = Vec::new();
    dgram.encode(&mut bytes);
    bytes[10..12].copy_from_slice(&u16::MAX.to_be_bytes()); // forge the count
    assert!(matches!(
        collector.ingest(&bytes),
        Err(CodecError::Truncated { .. })
    ));
    assert_eq!(collector.reports().len(), 2, "partial decode rolled back");
    assert_eq!(collector.decode_errors(), 1);
}

/// Truncating a PINT datagram below its fixed header is classified as
/// `Truncated`, never a panic — this is the UDP listener's first line
/// against runt frames.
#[test]
fn pint_runt_header_is_truncated_not_a_panic() {
    let valid =
        amlight::pint::batch_into_datagrams(Ipv4Addr::LOCALHOST, &[pint_report(7)], 64)[0].clone();
    let mut collector = PintCollector::default();
    for cut in 0..12.min(valid.len()) {
        let err = collector.ingest(&valid[..cut]).unwrap_err();
        assert!(
            matches!(err, CodecError::Truncated { .. }),
            "cut={cut} {err:?}"
        );
    }
    assert_eq!(collector.decode_errors(), 12);
    // The collector keeps working afterwards.
    assert_eq!(collector.ingest(&valid).unwrap(), 1);
}
