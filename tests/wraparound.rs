//! End-to-end validation of the 32-bit timestamp wraparound (paper §V):
//! the artifact must appear in the telemetry, corrupt the derived
//! inter-arrival features exactly as predicted, and the detection
//! pipeline must keep working anyway (its models are trained on the
//! aliased values).

use amlight::core::event::Telemetry;
use amlight::core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight::core::testbed::{Testbed, TestbedConfig};
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::{FeatureSet, FlowTable, FlowTableConfig};
use amlight::ml::MlpConfig;
use amlight::net::{PacketBuilder, PacketRecord, Trace, TrafficClass};
use amlight::sim::clock::WRAP_PERIOD_NS;
use amlight::traffic::ReplayLibrary;
use std::net::Ipv4Addr;

/// One flow whose packets straddle several wrap periods.
fn slow_flow_trace(gap_ns: u64, packets: u64) -> Trace {
    let b = PacketBuilder::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    (0..packets)
        .map(|i| PacketRecord {
            ts_ns: i * gap_ns,
            packet: b.tcp(5555, 80, amlight::net::TcpFlags::ACK, i as u32, 0, 50),
            class: TrafficClass::Benign,
        })
        .collect()
}

#[test]
fn telemetry_stamps_wrap_on_the_wire() {
    let lab = Testbed::new(TestbedConfig::default());
    // 6-second gaps: every inter-packet interval crosses a wrap.
    let reports = lab.run(&slow_flow_trace(6_000_000_000, 5));
    assert_eq!(reports.len(), 5);
    // Full-width export times are monotone…
    for w in reports.windows(2) {
        assert!(w[1].export_ns > w[0].export_ns);
    }
    // …but at least one consecutive pair of 32-bit egress stamps goes
    // "backwards" (the wrap).
    let stamps: Vec<u32> = reports
        .iter()
        .map(|r| r.sink_hop().unwrap().egress_tstamp)
        .collect();
    assert!(
        stamps.windows(2).any(|w| w[1] < w[0]),
        "6 s gaps must wrap the 32-bit clock: {stamps:?}"
    );
}

#[test]
fn derived_inter_arrival_aliases_exactly_as_the_paper_warns() {
    let lab = Testbed::new(TestbedConfig::default());
    let gap: u64 = 6_000_000_000; // > one wrap period
    let reports = lab.run(&slow_flow_trace(gap, 4));

    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut last_iat = 0.0;
    for r in &reports {
        let (_, rec) = table.apply(&r.flow_update());
        last_iat = rec.last_inter_arrival_s;
    }
    let aliased = (gap % WRAP_PERIOD_NS) as f64 / 1e9;
    // The derived IAT is the aliased value (modulo sub-microsecond
    // switch-latency noise), NOT the true 6 s.
    assert!(
        (last_iat - aliased).abs() < 0.001,
        "expected ≈{aliased:.3}s aliased IAT, got {last_iat:.3}s"
    );
    assert!((last_iat - 6.0).abs() > 1.0, "must not equal the true gap");
}

#[test]
fn detection_survives_wrapped_workloads() {
    // Train normally; then feed a SlowLoris replay whose 12 s keepalives
    // all alias — the pipeline must still flag it (it does in Table VI;
    // this pins the property explicitly).
    let lab = Testbed::new(TestbedConfig::default());
    let lib = ReplayLibrary::build(400, 21);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&lib, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(
        &raw,
        FeatureSet::full(),
        &TrainerConfig {
            mlp: MlpConfig {
                epochs: 4,
                ..MlpConfig::paper_mlp()
            },
            ..Default::default()
        },
    );

    let unseen = lab.replay_class(&ReplayLibrary::build(400, 22), TrafficClass::SlowLoris);
    // Sanity: the replay really does cross wrap periods.
    let span = unseen.last().unwrap().0.export_ns - unseen[0].0.export_ns;
    assert!(span > WRAP_PERIOD_NS, "replay must span multiple wraps");

    let mut pipe = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipe.run_sync(&unseen);
    let s = report.class_summary(TrafficClass::SlowLoris);
    assert!(s.predicted > 10);
    assert!(
        s.accuracy() > 0.8,
        "wrap-aliased SlowLoris accuracy {}",
        s.accuracy()
    );
}
