//! Integration: the full path from workload generation through the
//! dataplane simulator, INT instrumentation, feature extraction, model
//! training, and the automated detection pipeline.

use amlight::core::event::Telemetry;
use amlight::core::pipeline::{DetectionPipeline, PipelineConfig};
use amlight::core::testbed::{Testbed, TestbedConfig};
use amlight::core::trainer::{dataset_from_events, train_bundle, TrainerConfig};
use amlight::features::{FeatureSet, FlowTable, FlowTableConfig};
use amlight::int::IntCollector;
use amlight::ml::model::BinaryClassifier;
use amlight::ml::MlpConfig;
use amlight::net::{Encode, TrafficClass};
use amlight::traffic::{ReplayLibrary, TrafficMix, TrafficMixConfig};

fn small_trainer() -> TrainerConfig {
    TrainerConfig {
        mlp: MlpConfig {
            epochs: 6,
            batch_size: 256,
            ..MlpConfig::paper_mlp()
        },
        ..Default::default()
    }
}

#[test]
fn capture_to_verdicts() {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(400, 1);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    assert_eq!(raw.n_features(), 15);
    let bundle = train_bundle(&raw, FeatureSet::full(), &small_trainer());

    // The flood replay must be flagged as attack with high confidence.
    let test_library = ReplayLibrary::build(400, 2);
    let labeled = lab.replay_class(&test_library, TrafficClass::SynFlood);
    let mut pipe = DetectionPipeline::new(bundle.clone(), PipelineConfig::rust_pace());
    let report = pipe.run_sync(&labeled);
    let s = report.class_summary(TrafficClass::SynFlood);
    assert!(s.predicted > 100);
    assert!(s.accuracy() > 0.9, "flood accuracy {}", s.accuracy());

    // Benign replay must not raise an alarm storm.
    let labeled = lab.replay_class(&test_library, TrafficClass::Benign);
    let mut pipe = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipe.run_sync(&labeled);
    let s = report.class_summary(TrafficClass::Benign);
    assert!(s.accuracy() > 0.85, "benign accuracy {}", s.accuracy());
}

#[test]
fn telemetry_survives_the_wire() {
    // Reports produced by the simulator, serialized to bytes, decoded by
    // the collector, must drive the flow table identically to in-memory
    // reports.
    let lab = Testbed::new(TestbedConfig::default());
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(2, 5));
    let trace = mix.generate();
    let reports = lab.run(&trace);
    assert!(!reports.is_empty());

    let mut stream = Vec::new();
    for r in &reports {
        stream.extend_from_slice(&r.encode_to_bytes());
    }
    let mut collector = IntCollector::new();
    // Feed in awkward chunk sizes to exercise resync-free streaming.
    let mut decoded = Vec::new();
    for chunk in stream.chunks(333) {
        decoded.extend(collector.ingest(chunk));
    }
    assert_eq!(decoded, reports);
    assert_eq!(collector.stats().decode_errors, 0);

    // Same flow-table outcome either way.
    let mut direct = FlowTable::new(FlowTableConfig::default());
    let mut via_wire = FlowTable::new(FlowTableConfig::default());
    for r in &reports {
        direct.apply(&r.flow_update());
    }
    for r in &decoded {
        via_wire.apply(&r.flow_update());
    }
    assert_eq!(direct.len(), via_wire.len());
    assert_eq!(direct.created(), via_wire.created());
    assert_eq!(direct.updated(), via_wire.updated());
}

#[test]
fn multi_hop_chain_accumulates_metadata() {
    let lab = Testbed::new(TestbedConfig {
        hops: 4,
        ..Default::default()
    });
    let library = ReplayLibrary::build(50, 9);
    let labeled = lab.replay_class(&library, TrafficClass::Benign);
    for (report, _) in &labeled {
        assert_eq!(report.hops.len(), 4, "one stack entry per switch");
        // Hop metadata must be time-ordered along the path (modulo the
        // 32-bit wrap, which a 50-packet replay cannot hit per hop).
        for w in report.hops.windows(2) {
            assert!(w[1].ingress_tstamp.wrapping_sub(w[0].egress_tstamp) < u32::MAX / 2);
        }
    }
}

#[test]
fn zero_day_slowloris_is_detected() {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(600, 3);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(&raw, FeatureSet::full(), &small_trainer());

    let unseen = lab.replay_class(&ReplayLibrary::build(600, 4), TrafficClass::SlowLoris);
    let mut pipe = DetectionPipeline::new(bundle, PipelineConfig::rust_pace());
    let report = pipe.run_sync(&unseen);
    let s = report.class_summary(TrafficClass::SlowLoris);
    assert!(
        s.predicted > 20,
        "needs final verdicts, got {}",
        s.predicted
    );
    assert!(
        s.accuracy() > 0.8,
        "zero-day slowloris accuracy {} ({}/{} wrong)",
        s.accuracy(),
        s.misclassified,
        s.predicted
    );
}

#[test]
fn sflow_sampling_misses_what_int_sees() {
    use amlight::sflow::{SamplingMode, SflowAgent};
    let mix = TrafficMix::new(TrafficMixConfig::paper_capture(3, 77));
    let trace = mix.generate();

    let lab = Testbed::new(TestbedConfig::default());
    let int_view = lab.run_labeled(&trace);
    let mut agent = SflowAgent::new(SamplingMode::RandomSkip { period: 256 }, 8);
    let sflow_view = agent.sample_stream(trace.iter().map(|r| (r.ts_ns, &r.packet, r.class)));

    let int_slowloris = int_view
        .iter()
        .filter(|(_, c)| *c == TrafficClass::SlowLoris)
        .count();
    let sflow_slowloris = sflow_view
        .iter()
        .filter(|(_, c)| *c == TrafficClass::SlowLoris)
        .count();
    assert!(
        int_slowloris > 100,
        "INT sees the episode ({int_slowloris})"
    );
    assert!(
        sflow_slowloris * 50 < int_slowloris,
        "sampling must lose at least 98% of SlowLoris ({sflow_slowloris} vs {int_slowloris})"
    );
}

#[test]
fn ensemble_beats_its_weakest_member_on_zero_day() {
    let lab = Testbed::new(TestbedConfig::default());
    let library = ReplayLibrary::build(500, 13);
    let mut training = Vec::new();
    for class in TrafficClass::ALL {
        if class != TrafficClass::SlowLoris {
            training.extend(lab.replay_class(&library, class));
        }
    }
    let raw = dataset_from_events(&training, FeatureSet::full());
    let bundle = train_bundle(&raw, FeatureSet::full(), &small_trainer());

    let unseen = lab.replay_class(&ReplayLibrary::build(500, 14), TrafficClass::SlowLoris);
    let unseen_raw = dataset_from_events(&unseen, FeatureSet::full());
    let mut scaled = unseen_raw.clone();
    bundle.scaler.transform(&mut scaled);

    let accs = [
        bundle.mlp.evaluate(&scaled).accuracy(),
        bundle.forest.evaluate(&scaled).accuracy(),
        bundle.gnb.evaluate(&scaled).accuracy(),
    ];
    let weakest = accs.iter().cloned().fold(f64::INFINITY, f64::min);

    let mut ens_ok = 0usize;
    for i in 0..scaled.len() {
        if bundle.ensemble_vote(unseen_raw.row(i)) {
            ens_ok += 1;
        }
    }
    let ens_acc = ens_ok as f64 / scaled.len() as f64;
    assert!(
        ens_acc >= weakest,
        "ensemble {ens_acc} must not trail the weakest member {weakest}"
    );
}
