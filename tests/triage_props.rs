//! Property corpus for the triage sketches (`features::triage`): the
//! windowed count-min must never underestimate under arbitrary
//! interleavings of observe and window decay, the entropy sketch must be
//! exact on collision-free universes (and never read above the exact
//! Shannon entropy elsewhere), and decay must never underflow.

use amlight::features::{EntropySketch, WindowedCountMin};
use proptest::prelude::*;
use std::collections::HashMap;

/// One step of an interleaved sketch workload: observe a key from a
/// small universe, or roll the window (halve every counter).
#[derive(Debug, Clone, Copy)]
enum Op {
    Observe(u64),
    Decay,
}

/// Arbitrary interleavings, biased toward observes so decays land on
/// non-trivial counter states.
fn arb_ops(universe: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    let span = universe + universe / 4 + 1;
    proptest::collection::vec(
        (0u64..span).prop_map(move |v| {
            if v < universe {
                Op::Observe(v)
            } else {
                Op::Decay
            }
        }),
        0..len,
    )
}

proptest! {
    /// Count-min is overestimate-only, and window decay preserves that:
    /// halving every counter cannot under-run the per-key halved true
    /// count, because `floor(a/2) + floor(b/2) <= floor((a+b)/2)`.
    #[test]
    fn count_min_never_underestimates(ops in arb_ops(32, 400)) {
        let mut cm = WindowedCountMin::new(64, 4);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for op in &ops {
            match op {
                Op::Observe(k) => {
                    let est = cm.observe(*k);
                    let r = reference.entry(*k).or_insert(0);
                    *r += 1;
                    prop_assert!(est >= *r, "estimate {est} < true count {r} for key {k}");
                }
                Op::Decay => {
                    cm.decay();
                    for r in reference.values_mut() {
                        *r >>= 1;
                    }
                }
            }
        }
        for (k, r) in &reference {
            let est = cm.estimate(*k);
            prop_assert!(est >= *r, "final estimate {est} < true count {r} for key {k}");
        }
    }

    /// On a universe of symbols with pairwise-distinct buckets the
    /// sketch entropy IS the exact Shannon entropy of the draws.
    #[test]
    fn entropy_is_exact_on_collision_free_universes(
        draws in proptest::collection::vec(0usize..8, 1..300),
    ) {
        // Deterministically pick 8 symbols mapping to distinct buckets.
        let probe = EntropySketch::new(256);
        let mut symbols = Vec::new();
        let mut buckets = std::collections::HashSet::new();
        let mut candidate = 0u64;
        while symbols.len() < 8 {
            if buckets.insert(probe.bucket_of(candidate)) {
                symbols.push(candidate);
            }
            candidate += 1;
        }

        let mut sk = EntropySketch::new(256);
        let mut counts = [0u64; 8];
        for &d in &draws {
            sk.observe(symbols[d]);
            counts[d] += 1;
        }
        let total: u64 = counts.iter().sum();
        let exact: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.ln()
            })
            .sum();
        prop_assert!(
            (sk.entropy() - exact).abs() < 1e-9,
            "sketch {} vs exact {exact}",
            sk.entropy()
        );
    }

    /// Bucket collisions only ever merge symbols, and merging never
    /// raises Shannon entropy: the sketch reads at most the exact value
    /// no matter what the symbol stream looks like.
    #[test]
    fn entropy_never_exceeds_exact(
        symbols in proptest::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut sk = EntropySketch::new(64);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &s in &symbols {
            sk.observe(s);
            *counts.entry(s).or_insert(0) += 1;
        }
        let total = symbols.len() as f64;
        let exact: f64 = counts
            .values()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.ln()
            })
            .sum();
        prop_assert!(
            sk.entropy() <= exact + 1e-9,
            "sketch {} above exact {exact}",
            sk.entropy()
        );
    }

    /// Window decay is monotone and can never underflow: the entropy
    /// total tracks its buckets through any interleaving, and repeated
    /// halving drains everything to exactly zero (u64 floor halving
    /// cannot wrap).
    #[test]
    fn window_decay_never_underflows(ops in arb_ops(16, 300)) {
        let mut sk = EntropySketch::new(32);
        let mut cm = WindowedCountMin::new(32, 3);
        for op in &ops {
            match op {
                Op::Observe(k) => {
                    sk.observe(*k);
                    cm.observe(*k);
                }
                Op::Decay => {
                    let before = sk.total();
                    sk.decay();
                    cm.decay();
                    prop_assert!(sk.total() <= before, "decay grew the total");
                }
            }
        }
        for _ in 0..64 {
            sk.decay();
            cm.decay();
        }
        prop_assert_eq!(sk.total(), 0);
        prop_assert!(sk.entropy() == 0.0, "drained sketch has entropy");
        for k in 0..16u64 {
            prop_assert_eq!(cm.estimate(k), 0);
        }
    }
}
