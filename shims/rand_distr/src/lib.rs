//! Offline shim for `rand_distr`: the three continuous distributions the
//! traffic generators draw from, via inverse-transform / Box–Muller.

use rand::RngCore;
use std::fmt;

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Types from which values can be sampled.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform in (0, 1] — safe for `ln`.
#[inline]
fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard normal via Box–Muller.
#[inline]
fn std_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open_unit(rng);
    let u2 = open_unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Self { lambda })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Exp {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open_unit(rng).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(mu + sigma * Z)`. Generic over the
/// sample type like the real crate, but only `f64` is implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma >= 0.0 && mu.is_finite() && sigma.is_finite() {
            Ok(Self { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }
}

/// Pareto distribution with the given scale (minimum) and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto<F = f64> {
    scale: F,
    shape: F,
}

impl Pareto<f64> {
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite() {
            Ok(Self { scale, shape })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Pareto<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale / open_unit(rng).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(LogNormal::new(1.0, -0.1).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
    }

    #[test]
    fn samples_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let exp = Exp::new(2.0).unwrap();
        let mean: f64 = (0..20_000).map(|_| exp.sample(&mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.05, "Exp(2) mean ≈ 0.5, got {mean}");

        let par = Pareto::new(3.0, 2.5).unwrap();
        for _ in 0..1000 {
            assert!(par.sample(&mut rng) >= 3.0);
        }

        let ln = LogNormal::new(0.0, 0.5).unwrap();
        for _ in 0..1000 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }
}
