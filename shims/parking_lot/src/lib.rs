//! Offline shim for `parking_lot`: thin wrappers over `std::sync` locks
//! with parking_lot's panic-free, non-poisoning guard API.

use std::fmt;
use std::sync::PoisonError;

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader–writer lock; `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Mutual-exclusion lock; `lock` never returns poison errors.
#[derive(Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
