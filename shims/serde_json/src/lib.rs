//! Offline shim for `serde_json`: prints and parses the `serde` shim's
//! [`Value`] tree as JSON. Floats use Rust's shortest round-trip
//! formatting; non-finite floats serialize as `null`.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Lower any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- printer ---------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-roundtrip and always keeps a
                // fractional part or exponent, so floats stay floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                break_line(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                break_line(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !pairs.is_empty() {
                break_line(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn break_line(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        c => return Err(Error(format!("unexpected `{}` in array", c as char))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        c => return Err(Error(format!("unexpected `{}` in object", c as char))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        c => return Err(Error(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad integer `{text}`: {e}")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Build a [`Value`] in place: `json!({ "key": expr, ... })`,
/// `json!([a, b])`, or `json!(expr)`. Values are any `Serialize` type.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($val:expr) => { $crate::to_value(&$val) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&String::from("a\"b\n")).unwrap(), "\"a\\\"b\\n\"");
        let x: u32 = from_str("42").unwrap();
        assert_eq!(x, 42);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
        let nan: f64 = from_str("null").unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u8, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u8> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let pairs = vec![(String::from("a"), 1.25f64), (String::from("b"), 2.0)];
        let s = to_string(&pairs).unwrap();
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn float_precision_survives() {
        let xs = [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0];
        let s = to_string(&xs.to_vec()).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} must round-trip exactly");
        }
    }

    #[test]
    fn json_macro_and_pretty() {
        let v = json!({ "name": "x", "n": 3usize, "acc": 0.5f64 });
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"name\":\"x\",\"n\":3,\"acc\":0.5}");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""));
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn option_and_ipv4() {
        use std::net::Ipv4Addr;
        let some: Option<u8> = Some(3);
        let none: Option<u8> = None;
        assert_eq!(to_string(&some).unwrap(), "3");
        assert_eq!(to_string(&none).unwrap(), "null");
        let ip = Ipv4Addr::new(10, 0, 0, 7);
        let s = to_string(&ip).unwrap();
        assert_eq!(s, "\"10.0.0.7\"");
        let back: Ipv4Addr = from_str(&s).unwrap();
        assert_eq!(back, ip);
    }

    #[test]
    fn u64_precision_survives() {
        let big: u64 = (1 << 62) + 12345;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }
}
