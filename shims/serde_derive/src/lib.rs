//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote. The input item is parsed
//! directly from the `proc_macro` token stream (this workspace derives
//! only on non-generic structs and enums with unit / newtype / struct
//! variants — exactly what the hand parser accepts), and the generated
//! impl is emitted as source text targeting the value-tree traits in
//! the `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- item model ------------------------------------------------------

enum Fields {
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Tuple arity.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to the `struct`/`enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(_) => i += 1,
            None => panic!("derive shim: no struct/enum found"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive shim: generic type `{name}` is not supported");
        }
    }

    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("derive shim: expected enum body, got {other:?}"),
        };
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Field names of `{ a: T, b: U, ... }`, skipping attributes,
/// visibility, and type tokens (tracking `<...>` nesting for types like
/// `Vec<(A, B)>` whose commas hide inside groups but whose angle
/// brackets appear as bare punctuation).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive shim: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of `(T, U, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    count - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`Name = expr`) up to the comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation -------------------------------------------------

/// `(field, to_value(expr))` pairs for an object literal.
fn named_pairs(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&{})),",
                access(f)
            )
        })
        .collect()
}

/// `field: from_value(src.get("field")?)?,` initializers.
fn named_inits(fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\")\
                 .ok_or_else(|| ::serde::DeError::missing(\"{f}\"))?)?,"
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    named_pairs(fs, |f| format!("self.{f}"))
                ),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let pairs = named_pairs(fs, |f| format!("(*{f})"));
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{pairs}]))]),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok(Self {{ {} }})",
                    named_inits(fs, "__v")
                ),
                Fields::Tuple(1) => {
                    "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))"
                        .to_string()
                }
                Fields::Tuple(n) => {
                    let inits: String = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                        .collect();
                    format!(
                        "{{ let __a = __v.as_array()\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?;\
                         if __a.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError(::std::format!(\
                         \"expected {n} elements, got {{}}\", __a.len()))); }}\
                         ::std::result::Result::Ok(Self({inits})) }}"
                    )
                }
                Fields::Unit => "::std::result::Result::Ok(Self)".to_string(),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __a = __inner.as_array()\
                                 .ok_or_else(|| ::serde::DeError::expected(\
                                 \"array\", __inner))?;\
                                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError(::std::format!(\
                                 \"expected {n} elements, got {{}}\", __a.len()))); }}\
                                 ::std::result::Result::Ok({name}::{vn}({inits})) }}"
                            ))
                        }
                        Fields::Named(fs) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                            named_inits(fs, "__inner")
                        )),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match __v {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }},\n\
                         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                             let (__tag, __inner) = &__pairs[0];\n\
                             match __tag.as_str() {{\n\
                                 {tagged_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\
                                     \"unknown variant `{{__other}}` of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"{name} variant\", __other)),\n\
                     }}\n\
                 }}\n\
                 }}"
            )
        }
    }
}
