//! Offline shim for the `rand` crate: deterministic xoshiro256++ RNG
//! behind the 0.9-era `Rng`/`SeedableRng`/`SliceRandom` API surface the
//! workspace uses. Streams are stable across runs and platforms.

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    /// A small, fast, deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, the reference recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }

        #[inline]
        pub(crate) fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding entry points.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random (`Rng::random`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = (rng.next_u64() >> 32) as u8;
        }
        out
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// One generic `SampleRange` impl per range shape hangs off this trait
/// (rather than per-type `SampleRange` impls) so that integer literals
/// in `rng.random_range(0..n)` unify with the surrounding expression's
/// type instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty random_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = <$t>::from_rng(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty random_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// The user-facing generator API.
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use crate::{RngCore, SampleRange};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u16 = rng.random_range(1024..=65535);
            assert!((1024..=65535).contains(&v));
            let w: usize = rng.random_range(0..12);
            assert!(w < 12);
            let f: f64 = rng.random_range(3e8..3e9);
            assert!((3e8..3e9).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
