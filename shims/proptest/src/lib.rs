//! Offline shim for `proptest`: the same `proptest!` / `Strategy` /
//! `prop_*` surface, backed by a deterministic xoshiro stream seeded
//! from the test's name. Runs a fixed 64 cases per property and does
//! not shrink failures — the failing inputs are printed instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cases run per property.
pub const CASES: usize = 64;

/// Deterministic per-test generator, seeded from the test name.
pub fn new_test_rng(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl<T: rand::Standard> Arbitrary for T {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.random()
    }
}

/// Whole-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone,
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone,
    std::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Accepted length specs for [`vec`]: `n`, `a..b`, `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max_incl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each generated `#[test]` runs [`CASES`]
/// deterministic cases; a failed `prop_assert*` reports the case index.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::new_test_rng(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        ::std::panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::CASES,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice across strategy expressions yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::box_strategy($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(0u32..100, 1..10);
        let mut a = crate::new_test_rng("x");
        let mut b = crate::new_test_rng("x");
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u16..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn vec_lengths(xs in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn tuples_and_arrays((a, b) in (any::<u8>(), any::<[u8; 4]>())) {
            let _ = (a, b);
            prop_assert_eq!(b.len(), 4);
        }
    }
}
