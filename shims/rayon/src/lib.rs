//! Offline shim for `rayon`: the parallel-iterator entry points the
//! workspace uses, executed **sequentially**. Each `par_*` method
//! returns the corresponding `std` iterator, so every downstream
//! adapter (`zip`, `map`, `for_each`, `collect`, …) is just the std
//! `Iterator` machinery and ordering semantics are identical to rayon's
//! order-preserving collects.

pub mod prelude {
    /// `par_iter` / `par_chunks_exact` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks_exact(&self, chunk_size: usize) -> std::slice::ChunksExact<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        #[inline]
        fn par_chunks_exact(&self, chunk_size: usize) -> std::slice::ChunksExact<'_, T> {
            self.chunks_exact(chunk_size)
        }

        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        #[inline]
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T> {
            self.chunks_exact_mut(chunk_size)
        }

        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `into_par_iter` for any owned iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        #[inline]
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The shim executes on the calling thread only.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn zip_and_mutate() {
        let mut a = vec![0; 4];
        let b = vec![10, 20, 30, 40];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, y)| *x = *y);
        assert_eq!(a, b);
    }

    #[test]
    fn chunks_and_ranges() {
        let rows = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 2];
        rows.par_chunks_exact(2)
            .zip(out.par_iter_mut())
            .for_each(|(c, o)| *o = c[0] + c[1]);
        assert_eq!(out, [3.0, 7.0]);

        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }
}
