//! Offline shim for `arc-swap`: atomic publication of an `Arc<T>` with
//! **wait-free readers** and a mutex-serialized writer.
//!
//! The real `arc-swap` crate gets lock-free `load_full` via differential
//! reference counting; that machinery is far beyond what this workspace
//! needs. This shim keeps the property the detection pipeline actually
//! depends on — a reader observing the current value is **one atomic
//! pointer load**, never a lock, never a CAS loop — by retiring
//! superseded values instead of freeing them:
//!
//! * [`ArcSwap::load`] is a single `AtomicPtr::load(Acquire)` plus a
//!   borrow. Readers can never block a writer, spin, or tear: the
//!   pointee is an immutable `T` that was fully constructed before the
//!   `Release` store that published its pointer.
//! * [`ArcSwap::store`] swaps the pointer under a writer mutex and
//!   pushes the superseded `Arc` onto a retire list. Retired values are
//!   kept alive until the `ArcSwap` itself drops, so a raw pointer
//!   handed out by *any* past `load` stays valid for as long as the
//!   guard (whose lifetime is tied to the `ArcSwap`) lives. This trades
//!   O(#stores) memory for zero reader-side reclamation cost — the
//!   intended use is model-epoch publication, where stores happen a
//!   handful of times per day, not per packet.
//!
//! Deliberate differences from the real crate: no `Cache`, no generic
//! `RefCnt`, no lease/fallback machinery, and superseded values are
//! freed at drop time rather than when the last guard goes away.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// An `Arc<T>` that can be atomically replaced while readers load it
/// wait-free.
pub struct ArcSwap<T> {
    /// Raw pointer to the current value; always equals
    /// `Arc::as_ptr(&owner.lock().unwrap())`. Readers only ever touch
    /// this field.
    current: AtomicPtr<T>,
    /// The authoritative owning handle for the current value. Writers
    /// serialize here; `load_full` clones from here.
    owner: Mutex<Arc<T>>,
    /// Every value this cell ever published and then replaced, kept
    /// alive so outstanding guards never dangle.
    retired: Mutex<Vec<Arc<T>>>,
}

/// A borrowed view of the value current at [`ArcSwap::load`] time.
///
/// Holding a guard does **not** pin the value as "current" — a writer
/// can publish a replacement concurrently — but the borrowed `T` stays
/// valid until the `ArcSwap` itself drops.
pub struct Guard<'a, T> {
    ptr: *const T,
    _owner: &'a ArcSwap<T>,
}

impl<T> std::ops::Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // `ptr` was read from `current`, which only ever holds pointers
        // obtained via `Arc::as_ptr` on an `Arc` that is owned by
        // `owner` or, once superseded, by `retired`. Neither drops
        // before the `ArcSwap` does, and the guard's lifetime is bound
        // to the `ArcSwap` borrow.
        // SAFETY: the pointee outlives the guard (see above) and, being
        // behind an `Arc`, is immutable for as long as it is shared.
        unsafe { &*self.ptr }
    }
}

impl<T> ArcSwap<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        let ptr = Arc::as_ptr(&value) as *mut T;
        Self {
            current: AtomicPtr::new(ptr),
            owner: Mutex::new(value),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: wrap a bare value.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Wait-free borrow of the current value: one `Acquire` pointer
    /// load, no lock, no refcount traffic. This is the per-batch hot
    /// path of every pipeline reader.
    #[inline]
    pub fn load(&self) -> Guard<'_, T> {
        Guard {
            ptr: self.current.load(Ordering::Acquire),
            _owner: self,
        }
    }

    /// Owned handle to the current value. Takes the writer mutex
    /// briefly — use [`ArcSwap::load`] on hot paths and this only where
    /// the value must outlive the cell's borrow.
    pub fn load_full(&self) -> Arc<T> {
        match self.owner.lock() {
            Ok(g) => Arc::clone(&g),
            // The mutex can only be poisoned by a panic inside this
            // module's own critical sections, which do not panic; treat
            // a poisoned lock as still holding a valid Arc.
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    /// Publish `new`, retiring the previous value. Returns the
    /// superseded `Arc` (which this cell *also* keeps alive internally
    /// until drop, for the benefit of outstanding guards).
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let ptr = Arc::as_ptr(&new) as *mut T;
        let mut owner = match self.owner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        // Publish the fully-constructed value; Release pairs with the
        // Acquire in `load`, so readers that see the new pointer also
        // see the pointee's initialized contents.
        self.current.store(ptr, Ordering::Release);
        let old = std::mem::replace(&mut *owner, new);
        let mut retired = match self.retired.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        retired.push(Arc::clone(&old));
        old
    }

    /// Publish `new`, discarding the returned handle.
    pub fn store(&self, new: Arc<T>) {
        let _ = self.swap(new);
    }

    /// How many superseded values this cell is keeping alive.
    pub fn retired_len(&self) -> usize {
        match self.retired.lock() {
            Ok(g) => g.len(),
            Err(p) => p.into_inner().len(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", &*self.load())
            .field("retired", &self.retired_len())
            .finish()
    }
}

// The cell hands out `&T` across threads (Sync required) and moves
// `Arc<T>` in and out (Send required); with `T: Send + Sync` all
// shared state is either atomic, mutex-guarded, or immutable-behind-Arc.
// SAFETY: all shared state is thread-safe under the bound (see above).
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: see the Send impl above; `load` only reads an AtomicPtr and
// derefs an immutable pointee, `swap`/`store` serialize on the mutexes.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

// Guards are snapshots of `&T`; sending one to another thread is shared
// access to the pointee from multiple threads, so `T: Sync` is the
// operative bound in both impls below.
// SAFETY: the pointee outlives the borrow by construction, and `T:
// Sync` makes cross-thread `&T` access sound.
unsafe impl<T: Send + Sync> Send for Guard<'_, T> {}
// SAFETY: `&Guard` only exposes `&T`, sound under `T: Sync`.
unsafe impl<T: Send + Sync> Sync for Guard<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_sees_initial_then_swapped() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load(), 1);
        let old = cell.swap(Arc::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.load_full().as_ref(), &2);
        assert_eq!(cell.retired_len(), 1);
    }

    #[test]
    fn old_guards_survive_a_swap() {
        let cell = ArcSwap::from_pointee(String::from("epoch-0"));
        let before = cell.load();
        cell.store(Arc::new(String::from("epoch-1")));
        // The pre-swap guard still reads the retired value.
        assert_eq!(&*before, "epoch-0");
        assert_eq!(&*cell.load(), "epoch-1");
    }

    #[test]
    fn concurrent_readers_never_tear() {
        // Each published value is internally consistent (a == b);
        // readers racing the writer must never observe a mix.
        #[derive(Debug)]
        struct Pair {
            a: u64,
            b: u64,
        }
        let cell = Arc::new(ArcSwap::from_pointee(Pair { a: 0, b: 0 }));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen_max = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let g = cell.load();
                        assert_eq!(g.a, g.b, "torn read");
                        seen_max = seen_max.max(g.a);
                    }
                    seen_max
                })
            })
            .collect();
        for i in 1..=200u64 {
            cell.store(Arc::new(Pair { a: i, b: i }));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            assert!(r.join().unwrap() <= 200);
        }
        assert_eq!(cell.retired_len(), 200);
    }

    #[test]
    fn load_full_is_an_owned_handle() {
        let cell = ArcSwap::from_pointee(7u32);
        let owned = cell.load_full();
        drop(cell);
        assert_eq!(*owned, 7);
    }
}
