//! Low-level socket plumbing for the ingest server: `SO_REUSEPORT`
//! listener groups and `recvmmsg`/`sendmmsg` syscall batching.
//!
//! This crate lives under `shims/` for the same reason `stats_alloc`
//! does: project rule R5 confines `unsafe` to the shim layer, and
//! everything here that goes beyond what `std::net` exposes — binding N
//! sockets to one port so the kernel's flow hash spreads datagrams
//! across per-core listeners, and draining a socket in one syscall per
//! *batch* instead of one per datagram — needs raw FFI against the libc
//! symbols `std` already links.
//!
//! Two build flavors:
//!
//! * **Linux**: real `socket(2)`/`setsockopt(2)`/`bind(2)` with
//!   `SO_REUSEPORT`, and `recvmmsg(2)`/`sendmmsg(2)` batched IO
//!   (`MSG_WAITFORONE`: block for the first datagram, then take
//!   whatever else is already queued without blocking again).
//! * **Everything else**: a portable fallback — plain `std` binds (the
//!   first group member binds, later members fail over to
//!   `try_clone`-sharing at the caller's discretion) and a one-datagram
//!   `recv`/`send` loop. Semantics match; only the syscall count and
//!   the kernel-side load spreading differ.
//!
//! Blocking behavior is inherited from the socket: callers set a read
//! timeout (`UdpSocket::set_read_timeout`) and [`recv_batch`] reports a
//! quiet interval as `Ok(0)`, so listener loops stay responsive to
//! their stop flag without busy-polling.

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};

/// Largest datagram a [`Frame`] can hold. Telemetry datagrams are far
/// smaller (an sFlow datagram with 32 samples is under 1 KiB); anything
/// larger is truncated on receive and rejected by the decoder as
/// malformed, which is the correct fate for an oversized datagram.
pub const MAX_DATAGRAM: usize = 2048;

/// Most datagrams one [`recv_batch`] / [`send_batch`] call moves. The
/// scratch `iovec`/`mmsghdr` arrays live on the stack, so this bounds
/// their size (64 × ~64 B ≈ 4 KiB — cheap, and deep enough that the
/// per-syscall overhead amortizes to noise).
pub const MAX_BATCH: usize = 64;

/// One receive slot: a fixed buffer plus the length of the datagram the
/// last [`recv_batch`] call parked in it. Allocated once per listener
/// and reused forever — the receive hot loop never touches the heap.
#[derive(Clone)]
pub struct Frame {
    pub buf: [u8; MAX_DATAGRAM],
    pub len: usize,
}

impl Frame {
    pub fn new() -> Self {
        Self {
            buf: [0u8; MAX_DATAGRAM],
            len: 0,
        }
    }

    /// The datagram bytes received into this frame.
    pub fn payload(&self) -> &[u8] {
        &self.buf[..self.len.min(MAX_DATAGRAM)]
    }
}

impl Default for Frame {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame {{ len: {} }}", self.len)
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw Linux FFI. Struct layouts follow the LP64 `asm-generic` ABI
    //! shared by x86_64 and aarch64.

    use std::io;
    use std::mem::size_of;
    use std::net::{SocketAddr, SocketAddrV4, TcpListener, UdpSocket};
    use std::os::fd::{AsRawFd, FromRawFd};

    use super::{Frame, MAX_BATCH};

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut core::ffi::c_void,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut core::ffi::c_void,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        /// Big-endian port.
        port: u16,
        /// Big-endian address.
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut core::ffi::c_void,
        ) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_DGRAM: i32 = 2;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;
    /// Block for the first datagram only; take the rest non-blocking.
    const MSG_WAITFORONE: i32 = 0x10000;

    fn v4_of(addr: SocketAddr) -> io::Result<SocketAddrV4> {
        match addr {
            SocketAddr::V4(v4) => Ok(v4),
            SocketAddr::V6(_) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "reuseport listener groups support IPv4 only",
            )),
        }
    }

    /// socket + SO_REUSEADDR + SO_REUSEPORT + bind, returning the raw fd.
    fn bound_fd(addr: SocketAddrV4, ty: i32) -> io::Result<i32> {
        // SAFETY: plain syscall; no pointers involved.
        let fd = unsafe { socket(AF_INET, ty, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let one: i32 = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            // SAFETY: `one` outlives the call and the length matches it.
            let rc = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&one as *const i32).cast(),
                    size_of::<i32>() as u32,
                )
            };
            if rc != 0 {
                let err = io::Error::last_os_error();
                // SAFETY: fd came from `socket` above and is not yet
                // owned by any std type.
                unsafe { close(fd) };
                return Err(err);
            }
        }
        let sa = SockAddrIn {
            family: AF_INET as u16,
            port: addr.port().to_be(),
            addr: u32::from(*addr.ip()).to_be(),
            zero: [0u8; 8],
        };
        // SAFETY: `sa` is a valid sockaddr_in and the length matches it.
        let rc = unsafe { bind(fd, &sa, size_of::<SockAddrIn>() as u32) };
        if rc != 0 {
            let err = io::Error::last_os_error();
            // SAFETY: fd came from `socket` above; nothing else owns it.
            unsafe { close(fd) };
            return Err(err);
        }
        Ok(fd)
    }

    pub fn bind_udp_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        let fd = bound_fd(v4_of(addr)?, SOCK_DGRAM)?;
        // SAFETY: `fd` is a freshly bound UDP socket owned by no one
        // else; ownership transfers to the returned UdpSocket.
        Ok(unsafe { UdpSocket::from_raw_fd(fd) })
    }

    pub fn bind_tcp_reuseport(addr: SocketAddr, backlog: u32) -> io::Result<TcpListener> {
        let fd = bound_fd(v4_of(addr)?, SOCK_STREAM)?;
        // SAFETY: plain syscall on the fd we own.
        let rc = unsafe { listen(fd, backlog.min(i32::MAX as u32) as i32) };
        if rc != 0 {
            let err = io::Error::last_os_error();
            // SAFETY: fd came from `bound_fd`; nothing else owns it.
            unsafe { close(fd) };
            return Err(err);
        }
        // SAFETY: `fd` is a freshly bound+listening TCP socket owned by
        // no one else; ownership transfers to the returned TcpListener.
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }

    pub fn recv_batch(sock: &UdpSocket, frames: &mut [Frame]) -> io::Result<usize> {
        let n = frames.len().min(MAX_BATCH);
        if n == 0 {
            return Ok(0);
        }
        let mut iovs: [IoVec; MAX_BATCH] = std::array::from_fn(|_| IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        });
        let mut hdrs: [MMsgHdr; MAX_BATCH] = std::array::from_fn(|_| MMsgHdr {
            hdr: MsgHdr {
                name: std::ptr::null_mut(),
                namelen: 0,
                iov: std::ptr::null_mut(),
                iovlen: 0,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        });
        for (i, frame) in frames.iter_mut().take(n).enumerate() {
            iovs[i].base = frame.buf.as_mut_ptr();
            iovs[i].len = frame.buf.len();
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
            hdrs[i].len = 0;
        }
        // The null timeout is the documented "no timeout" form; the
        // socket's SO_RCVTIMEO still bounds the first blocking receive.
        // SAFETY: `hdrs[..n]` point at iovecs that point into `frames`,
        // all of which outlive the call; vlen == n bounds kernel writes.
        let got = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                hdrs.as_mut_ptr(),
                n as u32,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            let err = io::Error::last_os_error();
            return match err.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(0),
                _ => Err(err),
            };
        }
        let got = got as usize;
        for (frame, hdr) in frames.iter_mut().zip(hdrs.iter()).take(got) {
            frame.len = hdr.len as usize;
        }
        Ok(got)
    }

    pub fn send_batch(sock: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
        let n = payloads.len().min(MAX_BATCH);
        if n == 0 {
            return Ok(0);
        }
        let mut iovs: [IoVec; MAX_BATCH] = std::array::from_fn(|_| IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        });
        let mut hdrs: [MMsgHdr; MAX_BATCH] = std::array::from_fn(|_| MMsgHdr {
            hdr: MsgHdr {
                name: std::ptr::null_mut(),
                namelen: 0,
                iov: std::ptr::null_mut(),
                iovlen: 0,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        });
        for (i, payload) in payloads.iter().take(n).enumerate() {
            // The kernel never writes through a send iovec; the cast is
            // an artifact of sharing one iovec struct for both calls.
            iovs[i].base = payload.as_ptr().cast_mut();
            iovs[i].len = payload.len();
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        // The socket is connected, so the null msg_name is valid.
        // SAFETY: `hdrs[..n]` reference iovecs over caller-owned
        // payload slices that outlive the call.
        let sent = unsafe { sendmmsg(sock.as_raw_fd(), hdrs.as_mut_ptr(), n as u32, 0) };
        if sent < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(sent as usize)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: std-only, one datagram per syscall, no
    //! kernel-side group spreading.

    use std::io;
    use std::net::{SocketAddr, TcpListener, UdpSocket};

    use super::Frame;

    pub fn bind_udp_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
        UdpSocket::bind(addr)
    }

    pub fn bind_tcp_reuseport(addr: SocketAddr, _backlog: u32) -> io::Result<TcpListener> {
        TcpListener::bind(addr)
    }

    pub fn recv_batch(sock: &UdpSocket, frames: &mut [Frame]) -> io::Result<usize> {
        let Some(frame) = frames.first_mut() else {
            return Ok(0);
        };
        match sock.recv(&mut frame.buf) {
            Ok(len) => {
                frame.len = len;
                Ok(1)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }

    pub fn send_batch(sock: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
        let mut sent = 0usize;
        for payload in payloads {
            sock.send(payload)?;
            sent += 1;
        }
        Ok(sent)
    }
}

/// Bind one member of a UDP listener group: every member binds the same
/// address/port with `SO_REUSEPORT`, and the kernel spreads incoming
/// datagrams across the group by flow hash. Call once per listener
/// thread. IPv4 only on the raw path.
pub fn bind_udp_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    sys::bind_udp_reuseport(addr)
}

/// Bind one member of a TCP accept group (`SO_REUSEPORT` listening
/// sockets on one port — the kernel load-balances incoming connections
/// across the group, actix-server style).
pub fn bind_tcp_reuseport(addr: SocketAddr, backlog: u32) -> io::Result<TcpListener> {
    sys::bind_tcp_reuseport(addr, backlog)
}

/// Drain up to `frames.len().min(MAX_BATCH)` datagrams in (at most) one
/// syscall. Blocks for the first datagram — bounded by the socket's
/// read timeout, a quiet interval returns `Ok(0)` — then takes whatever
/// else is already queued without blocking again.
pub fn recv_batch(sock: &UdpSocket, frames: &mut [Frame]) -> io::Result<usize> {
    sys::recv_batch(sock, frames)
}

/// Send up to `payloads.len().min(MAX_BATCH)` datagrams on a *connected*
/// UDP socket in one syscall; returns how many the kernel accepted.
pub fn send_batch(sock: &UdpSocket, payloads: &[&[u8]]) -> io::Result<usize> {
    sys::send_batch(sock, payloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
    use std::time::Duration;

    fn loopback(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }

    #[test]
    fn udp_group_shares_a_port_and_loses_nothing() {
        let a = bind_udp_reuseport(loopback(0)).expect("first bind");
        let port = a.local_addr().unwrap().port();
        let b = bind_udp_reuseport(loopback(port));
        // On the portable fallback the second bind may fail; the group
        // then degrades to a single socket.
        let group: Vec<UdpSocket> = match b {
            Ok(b) => vec![a, b],
            Err(_) => vec![a],
        };
        // Many distinct source ports => the kernel's flow hash spreads
        // datagrams across the group.
        const SENDERS: usize = 32;
        for i in 0..SENDERS {
            let tx = UdpSocket::bind(loopback(0)).unwrap();
            tx.send_to(&[i as u8; 16], loopback(port)).unwrap();
        }
        let mut got = 0usize;
        let mut frames = vec![Frame::new(); 8];
        for sock in &group {
            sock.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            loop {
                let n = recv_batch(sock, &mut frames).expect("recv");
                if n == 0 {
                    break;
                }
                for f in &frames[..n] {
                    assert_eq!(f.payload().len(), 16);
                }
                got += n;
            }
        }
        assert_eq!(got, SENDERS, "every datagram lands on some group member");
    }

    #[test]
    fn send_batch_roundtrips_on_a_connected_socket() {
        let rx = bind_udp_reuseport(loopback(0)).unwrap();
        let port = rx.local_addr().unwrap().port();
        let tx = UdpSocket::bind(loopback(0)).unwrap();
        tx.connect(loopback(port)).unwrap();

        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 3 + i as usize]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let sent = send_batch(&tx, &refs).unwrap();
        assert_eq!(sent, 10);

        rx.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut frames = vec![Frame::new(); 16];
        let mut got = 0;
        while got < 10 {
            let n = recv_batch(&rx, &mut frames).unwrap();
            assert!(n > 0, "expected more datagrams");
            got += n;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn quiet_socket_times_out_to_zero() {
        let rx = bind_udp_reuseport(loopback(0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut frames = vec![Frame::new(); 4];
        assert_eq!(recv_batch(&rx, &mut frames).unwrap(), 0);
    }

    #[test]
    fn tcp_group_accepts_connections() {
        let l = bind_tcp_reuseport(loopback(0), 16).unwrap();
        let port = l.local_addr().unwrap().port();
        let _second = bind_tcp_reuseport(loopback(port), 16).ok();
        let tx = std::net::TcpStream::connect(loopback(port)).unwrap();
        drop(tx);
    }

    #[test]
    fn oversized_datagrams_truncate_into_the_frame() {
        let rx = bind_udp_reuseport(loopback(0)).unwrap();
        let port = rx.local_addr().unwrap().port();
        let tx = UdpSocket::bind(loopback(0)).unwrap();
        tx.send_to(&vec![0xAB; MAX_DATAGRAM + 512], loopback(port))
            .unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut frames = vec![Frame::new(); 1];
        let n = recv_batch(&rx, &mut frames).unwrap();
        assert_eq!(n, 1);
        assert!(frames[0].payload().len() <= MAX_DATAGRAM);
    }
}
