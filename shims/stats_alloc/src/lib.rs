//! Offline shim for `stats_alloc`: a counting wrapper around the system
//! allocator.
//!
//! Register it as the `#[global_allocator]` of a benchmark binary, then
//! bracket a region of interest with [`Region::new`] /
//! [`Region::change`] to count how many heap allocations the region
//! performed. The bench crate uses this to *gate* the hot path's
//! "zero allocations per event in steady state" claim — a regression
//! shows up as a non-zero delta, not as a slow creep in a throughput
//! number.
//!
//! Counters are global process-wide atomics: cheap enough to leave on
//! (one relaxed fetch_add per malloc/realloc/free), and exact as long as
//! no *other* thread allocates inside the bracketed region — bench
//! binaries measure on the main thread with worker threads quiesced.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Counting allocator: forwards every call to [`System`] and bumps the
/// global counters.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: stats_alloc::StatsAlloc = stats_alloc::StatsAlloc;
/// ```
pub struct StatsAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// GlobalAlloc contract; counter updates are non-allocating atomics.
unsafe impl GlobalAlloc for StatsAlloc {
    // SAFETY: delegates to `System.alloc` under the caller's contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates to `System.dealloc` under the caller's contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates to `System.realloc` under the caller's contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: caller guarantees `ptr`/`layout` validity and a
        // non-zero `new_size`, per the GlobalAlloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A snapshot of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Calls to `alloc`.
    pub allocations: u64,
    /// Calls to `dealloc`.
    pub deallocations: u64,
    /// Calls to `realloc` (growth of an existing block).
    pub reallocations: u64,
    /// Total bytes requested across alloc + realloc.
    pub bytes_allocated: u64,
}

impl Stats {
    /// Heap operations that acquire or grow memory — the number the
    /// zero-alloc gate cares about (frees are not regressions).
    pub fn acquisitions(&self) -> u64 {
        self.allocations + self.reallocations
    }
}

/// Read the current global counters.
pub fn snapshot() -> Stats {
    Stats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        reallocations: REALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// Brackets a measured region: captures the counters at construction,
/// reports the delta on [`Region::change`].
#[derive(Debug)]
pub struct Region {
    start: Stats,
}

impl Region {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { start: snapshot() }
    }

    /// Counter deltas since this region began (or since the last
    /// [`Region::reset`]).
    pub fn change(&self) -> Stats {
        let now = snapshot();
        Stats {
            allocations: now.allocations - self.start.allocations,
            deallocations: now.deallocations - self.start.deallocations,
            reallocations: now.reallocations - self.start.reallocations,
            bytes_allocated: now.bytes_allocated - self.start.bytes_allocated,
        }
    }

    /// Restart the bracket at the current counters.
    pub fn reset(&mut self) {
        self.start = snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not register StatsAlloc as its global
    // allocator, so counters only move if some other test in the same
    // process does — exercise the arithmetic directly instead.
    #[test]
    fn region_delta_arithmetic() {
        let region = Region {
            start: Stats {
                allocations: 10,
                deallocations: 4,
                reallocations: 2,
                bytes_allocated: 640,
            },
        };
        ALLOCATIONS.store(13, Ordering::Relaxed);
        DEALLOCATIONS.store(5, Ordering::Relaxed);
        REALLOCATIONS.store(3, Ordering::Relaxed);
        BYTES_ALLOCATED.store(1024, Ordering::Relaxed);
        let d = region.change();
        assert_eq!(d.allocations, 3);
        assert_eq!(d.deallocations, 1);
        assert_eq!(d.reallocations, 1);
        assert_eq!(d.bytes_allocated, 384);
        assert_eq!(d.acquisitions(), 4);
    }
}
