//! Offline shim for the `bytes` crate: contiguous `Buf`/`BufMut`
//! cursors plus `Bytes`/`BytesMut` containers. Network byte order for
//! all multi-byte reads and writes, exactly like the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read cursor over contiguous bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes (always the full remainder in this shim).
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    #[inline]
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    #[inline]
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    #[inline]
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append-only write cursor.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        (**self).put_bytes(val, cnt)
    }
}

/// Growable byte buffer: writes append at the back, `Buf` reads consume
/// from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Take the entire contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        let taken = self.data.split_off(self.start);
        self.data.clear();
        self.start = 0;
        BytesMut {
            data: taken,
            start: 0,
        }
    }

    /// Freeze into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[self.start..]),
            pos: 0,
        }
    }

    /// Drop consumed bytes eagerly (keeps the backing store bounded for
    /// long-lived reassembly buffers).
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl Buf for BytesMut {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.start += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self {
            data: src.to_vec(),
            start: 0,
        }
    }
}

/// Immutable, cheaply cloneable byte cursor. Consuming via [`Buf`]
/// shrinks the visible window from the front, so `len`/`is_empty`
/// reflect the unread remainder, matching the real crate.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: Arc::from(src),
            pos: 0,
        }
    }

    /// A sub-view of the unread remainder, sharing the backing store.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::from(&self[lo..hi]),
            pos: 0,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        assert_eq!(buf.len(), 15);

        let mut cursor = buf.freeze();
        let c2 = cursor.clone();
        assert_eq!(cursor.get_u8(), 0xab);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xdead_beef);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert!(cursor.is_empty());
        assert_eq!(c2.len(), 15, "clones keep their own position");
    }

    #[test]
    fn bytesmut_front_consumption() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4, 5]);
        b.extend_from_slice(&[6]);
        assert_eq!(&b[..], &[3, 4, 5, 6]);
        let mut probe = &b[..];
        assert_eq!(probe.get_u8(), 3);
        assert_eq!(probe.remaining(), 3);
        assert_eq!(b.len(), 4, "probe did not consume the buffer");
    }

    #[test]
    fn slice_buf_and_copy() {
        let mut s: &[u8] = &[1, 2, 3, 4];
        let mut dst = [0u8; 2];
        s.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2]);
        assert_eq!(s.remaining(), 2);
    }

    #[test]
    fn put_bytes_fills() {
        let mut b = BytesMut::new();
        b.put_bytes(0, 5);
        assert_eq!(&b[..], &[0; 5]);
    }
}
