//! Offline shim for `criterion`: same macro/type surface, simple
//! wall-clock measurement. Each benchmark is calibrated so one sample
//! lasts roughly a millisecond, then `sample_size` samples are timed;
//! the report prints mean and minimum ns/iter plus throughput. All
//! harness CLI flags (e.g. `--quick`, `--bench`) are ignored.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE: Duration = Duration::from_millis(1);
const DEFAULT_SAMPLES: usize = 10;

/// Units a benchmark processes per iteration, for the rate column.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps alive; ignored here
/// because every iteration runs its own setup.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// Benchmark name, optionally parameterized (`group/name/param`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Passed to the benchmark closure; counts iterations and time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&label, self.throughput, samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: find how many iterations fill ~1 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut mean_sum_ns = 0.0f64;
    let mut min_ns = f64::INFINITY;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters_per_sample as f64;
        mean_sum_ns += ns;
        min_ns = min_ns.min(ns);
    }
    let mean_ns = mean_sum_ns / samples as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("{} elem/s", si(n as f64 / (mean_ns * 1e-9))),
        Throughput::Bytes(n) => format!("{}B/s", si(n as f64 / (mean_ns * 1e-9))),
    });
    match rate {
        Some(rate) => println!(
            "{label:<50} mean {:>12} min {:>12} thrpt {rate}",
            fmt_ns(mean_ns),
            fmt_ns(min_ns)
        ),
        None => println!(
            "{label:<50} mean {:>12} min {:>12}",
            fmt_ns(mean_ns),
            fmt_ns(min_ns)
        ),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declare a benchmark group runner: `criterion_group!(benches, f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the harness entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI flags (--quick, --bench, filters) are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Elements(64));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
