//! Offline shim for `serde`: a value-tree serialization framework with
//! the same trait and derive-macro names. `Serialize` lowers a type to
//! a [`Value`]; `Deserialize` rebuilds it. The `serde_json` shim prints
//! and parses that tree as JSON.
//!
//! Scope: exactly what this workspace's derives and `serde_json` calls
//! need. Not serializer-generic, no attributes, no borrowed data.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers keep full precision separately from floats so u64
    /// nanosecond stamps survive a round trip.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", kind_name(got)))
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    _ => Err(DeError::expected("integer", v)),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no NaN/Inf; mirror serde_json's `null`.
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Fine for the workspace's use — a
    /// handful of short static table labels per process.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError(format!(
                        "expected {expected}-tuple, got {} elements", a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// Maps become JSON objects, so keys must serialize to strings (unit
// enum variants and strings do) or to integers, which are stringified
// the way serde_json does.
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        other => panic!(
            "map key must serialize to a string, got {}",
            kind_name(&other)
        ),
    }
}

fn key_from_string(s: &str) -> Value {
    match s.parse::<i128>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(s.to_owned()),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .ok_or_else(|| DeError::expected("IPv4 string", v))?
            .parse()
            .map_err(|e| DeError(format!("bad IPv4 address: {e}")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
