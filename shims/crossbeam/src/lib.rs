//! Offline shim for `crossbeam`: the bounded-channel subset, backed by
//! `std::sync::mpsc::sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Cloneable producer half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Never blocks: `Full` when the channel is at capacity,
        /// `Disconnected` when the receiver is gone. The buffer-recycling
        /// pools in the threaded runtime lean on this — returning a spent
        /// buffer must never stall the stage doing the returning.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// Consumer half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks for at most `timeout`; distinguishes an empty channel
        /// (`Timeout`) from one whose senders are all gone
        /// (`Disconnected`).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel that holds at most `cap` in-flight messages
    /// (`cap == 0` gives rendezvous semantics, as in crossbeam).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn roundtrip_and_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::spawn(move || {
            for i in 0..10 {
                tx2.send(i).unwrap();
            }
        });
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
