//! Facade crate for the AmLight INT-based automated DDoS detection
//! reproduction. Re-exports every workspace crate under one roof so
//! examples and downstream users can depend on a single crate.
//!
//! The system reproduces *"Leveraging In-band Network Telemetry for
//! Automated DDoS Detection in Production Programmable Networks: The
//! AmLight Use Case"* (SC 2024 INDIS). See `DESIGN.md` for the full
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use amlight::prelude::*;
//!
//! // Build the paper's Fig. 6 testbed, replay a short mixed workload,
//! // and collect INT telemetry reports.
//! let mut lab = Testbed::new(TestbedConfig::default());
//! let reports = lab.replay_quick(42);
//! assert!(!reports.is_empty());
//! ```

// Compiler-enforced arm of amlint rule R5: unsafe stays in shims/.
#![forbid(unsafe_code)]

pub use amlight_core as core;
pub use amlight_features as features;
pub use amlight_ingest as ingest;
pub use amlight_int as int;
pub use amlight_ml as ml;
pub use amlight_net as net;
pub use amlight_pint as pint;
pub use amlight_sflow as sflow;
pub use amlight_sim as sim;
pub use amlight_traffic as traffic;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use amlight_core::{
        batch::{BatchDetector, BatchOutcome},
        db::FlowDatabase,
        event::{
            pint_view, sample_reports, LabeledEvent, Telemetry, TelemetryBackend, TelemetryEvent,
            ViewOptions,
        },
        guard::{CountMinSketch, FloodAlert, GuardConfig, NewFlowGuard},
        pipeline::{DetectionPipeline, PipelineConfig, PipelineReport},
        runtime::ThreadedPipeline,
        source::{
            EventReplaySource, EventSource, PintReplaySource, ReplaySource, SflowAgentSource,
            SflowReplaySource,
        },
        testbed::{Testbed, TestbedConfig},
        trainer::{
            dataset_from_events, dataset_from_labeled, train_bundle, ModelBundle, TrainerConfig,
        },
        verdict::{RecallCounts, SmoothingWindow, Verdict},
    };
    pub use amlight_features::{
        FeatureSet, FeatureVector, FlowTable, FlowTableConfig, PrefilterMode, ShardedFlowTable,
        TriageConfig, TriageStage, TriageVerdict,
    };
    pub use amlight_ingest::{IngestServer, IngestStats, ListenerConfig, WireProtocol};
    pub use amlight_int::{
        BudgetedTelemetry, IntCollector, MicroburstConfig, MicroburstDetector, TelemetryBudget,
        TelemetryReport,
    };
    pub use amlight_ml::{
        ensemble::MajorityEnsemble,
        gbt::{GbtConfig, GradientBoost},
        metrics::{BinaryMetrics, ConfusionMatrix},
        model::BinaryClassifier,
        roc::RocCurve,
        scaler::StandardScaler,
    };
    pub use amlight_net::{FlowKey, Packet, Protocol};
    pub use amlight_pint::{PintCollector, PintEncoder, PintReport, PintSketch, SketchConfig};
    pub use amlight_sflow::{SamplingMode, SflowAgent, SflowCollector};
    pub use amlight_sim::{clock::TelemetryClock, topology::Topology};
    pub use amlight_traffic::{
        schedule::{AttackKind, Episode, EpisodeSchedule},
        TrafficMix,
    };
}
